//! Popularity distributions shared by the workload generators.

use rand::Rng;

/// A Zipf(θ) sampler over `0..n` using a Walker alias table: O(1) per
/// draw (one uniform, one table probe) instead of the classic CDF binary
/// search's O(log n), with the same single-`rng.gen::<f64>()`-per-draw
/// RNG consumption. Exact in distribution (up to f64 rounding of the
/// rank probabilities) and deterministic given the RNG.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// Acceptance threshold per column: a draw landing in column `i`
    /// returns `i` when its fractional part falls below `prob[i]`,
    /// otherwise the column's alias.
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl ZipfSampler {
    /// Builds a sampler over `0..n` with exponent `theta` (`0` = uniform;
    /// `~0.99` = YCSB-style heavy skew).
    ///
    /// Construction is a single incremental pass: the rank weights
    /// `(i+1)^-θ` come from a linear sieve (the power function is
    /// completely multiplicative, so composites are one multiply of
    /// already-computed values and `powf` runs only at the ~n/ln n
    /// primes), and the alias table is Vogel's one-pass pairing of
    /// under- and over-full columns.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `theta` is negative or non-finite, or `n`
    /// exceeds `u32::MAX` (alias entries are u32 to halve the table).
    pub fn new(n: u64, theta: f64) -> ZipfSampler {
        assert!(n > 0, "need a non-empty universe");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be >= 0");
        assert!(n <= u32::MAX as u64, "universe too large for alias table");
        let n = n as usize;
        let w = zipf_weights(n, theta);
        let total: f64 = w.iter().sum();
        let scale = n as f64 / total;

        // Vogel's construction: columns scaled so the average is 1; every
        // under-full column borrows its slack from exactly one over-full
        // column.
        let mut prob: Vec<f64> = w.into_iter().map(|x| x * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.last().copied(), large.last().copied()) {
            small.pop();
            alias[s as usize] = l;
            let rest = (prob[l as usize] + prob[s as usize]) - 1.0;
            prob[l as usize] = rest;
            if rest < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are exactly-full columns up to rounding.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        ZipfSampler { prob, alias }
    }

    /// The universe size.
    pub fn n(&self) -> u64 {
        self.prob.len() as u64
    }

    /// Draws one rank (0 = most popular).
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let scaled = u * self.prob.len() as f64;
        let i = (scaled as usize).min(self.prob.len() - 1);
        let frac = scaled - i as f64;
        if frac < self.prob[i] {
            i as u64
        } else {
            self.alias[i] as u64
        }
    }
}

/// Rank weights `(i+1)^-θ` for `i` in `0..n`, via a linear
/// smallest-prime-factor sieve: `k ↦ k^-θ` is completely multiplicative,
/// so each composite is one multiply of previously computed weights and
/// `powf` is evaluated only at primes. Matches the direct `powf` table to
/// a few ulps (error grows with the number of prime factors, ≤ log₂ k).
fn zipf_weights(n: usize, theta: f64) -> Vec<f64> {
    let mut w = vec![1.0f64; n];
    if theta == 0.0 || n == 1 {
        return w;
    }
    // Index by value: w[k - 1] holds k^-θ.
    let mut primes: Vec<u32> = Vec::new();
    let mut spf = vec![0u32; n + 1];
    for k in 2..=n {
        if spf[k] == 0 {
            spf[k] = k as u32;
            primes.push(k as u32);
            w[k - 1] = (k as f64).powf(-theta);
        }
        for &p in &primes {
            let p = p as usize;
            let kp = k * p;
            if kp > n {
                break;
            }
            spf[kp] = p as u32;
            w[kp - 1] = w[k - 1] * w[p - 1];
            if p == spf[k] as usize {
                break;
            }
        }
    }
    w
}

/// Deterministically shuffles ranks onto items so that popular ranks are
/// scattered across the address space (real allocators do not place hot
/// objects contiguously). A Feistel-style bijection over `0..n`.
#[derive(Clone, Copy, Debug)]
pub struct Scatter {
    n: u64,
    seed: u64,
}

impl Scatter {
    /// A bijection over `0..n` parameterised by `seed`.
    pub fn new(n: u64, seed: u64) -> Scatter {
        Scatter { n, seed }
    }

    /// Maps rank `i` to a unique item index in `0..n`.
    ///
    /// Classic cycle-walking: iterate a permutation of the enclosing
    /// power-of-two domain until the value lands in `0..n`. Because the
    /// inner step (xorshift ∘ odd-multiplier LCG, both bijective modulo a
    /// power of two) is a permutation of the whole domain, the first
    /// in-range element of each orbit is unique — the composite is a true
    /// bijection on `0..n`.
    #[inline]
    pub fn map(&self, i: u64) -> u64 {
        debug_assert!(i < self.n);
        if self.n == 1 {
            return 0;
        }
        let bits = 64 - (self.n - 1).leading_zeros();
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let mul = (m5_mix(self.seed) | 1) & mask; // odd ⇒ bijective mod 2^bits
        let add = m5_mix(self.seed ^ 0xabcd) & mask;
        let shift = (bits / 2).max(1);
        let mut x = i;
        loop {
            // Bijective on [0, 2^bits): xorshift then LCG.
            x ^= x >> shift;
            x = x.wrapping_mul(mul).wrapping_add(add) & mask;
            if x < self.n {
                return x;
            }
        }
    }
}

/// A deterministic hash for placing slab slot `(page, slot)` at a word
/// offset — stable across runs so the same object always lives at the same
/// place, like a real allocator.
#[inline]
pub fn hash_slot(page: u64, slot: u64, seed: u64) -> u64 {
    m5_mix(page.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ slot.rotate_left(17) ^ seed)
}

#[inline]
fn m5_mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 31)).wrapping_mul(0x7fb5_d329_728e_a185);
    x = (x ^ (x >> 27)).wrapping_mul(0x81da_de5b_de93_80d4);
    x ^ (x >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_zero_theta_is_roughly_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} not ~uniform");
        }
    }

    #[test]
    fn zipf_high_theta_is_head_heavy() {
        let z = ZipfSampler::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut head = 0u32;
        for _ in 0..100_000 {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // The top 1% of keys should take well over a third of accesses.
        assert!(head > 33_000, "head got only {head}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(7, 0.5);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
        assert_eq!(z.n(), 7);
    }

    #[test]
    fn sieve_weights_match_direct_powf() {
        for &theta in &[0.3, 0.6, 0.9, 0.99, 1.2] {
            let w = zipf_weights(10_000, theta);
            for (i, &x) in w.iter().enumerate() {
                let exact = ((i + 1) as f64).powf(-theta);
                assert!(
                    (x - exact).abs() <= exact * 1e-12,
                    "weight {i} off: sieve {x} vs direct {exact} (theta {theta})"
                );
            }
        }
    }

    #[test]
    fn alias_table_columns_are_consistent() {
        let z = ZipfSampler::new(1000, 0.99);
        assert_eq!(z.prob.len(), 1000);
        for (i, &p) in z.prob.iter().enumerate() {
            assert!((0.0..=1.0).contains(&p), "prob[{i}] = {p} out of range");
            assert!((z.alias[i] as usize) < 1000);
            // A column that fully accepts needs no alias; one that can
            // reject must alias somewhere else.
            if p < 1.0 {
                assert_ne!(z.alias[i] as usize, i, "rejecting column aliases itself");
            }
        }
    }

    #[test]
    fn scatter_is_a_bijection() {
        for n in [1u64, 2, 5, 64, 1000] {
            let s = Scatter::new(n, 42);
            let mut seen = std::collections::HashSet::new();
            for i in 0..n {
                let m = s.map(i);
                assert!(m < n);
                assert!(seen.insert(m), "collision at {i} (n={n})");
            }
        }
    }

    #[test]
    fn scatter_depends_on_seed() {
        let a = Scatter::new(1000, 1);
        let b = Scatter::new(1000, 2);
        let diff = (0..1000).filter(|&i| a.map(i) != b.map(i)).count();
        assert!(diff > 900, "seeds should decorrelate ({diff})");
    }
}
