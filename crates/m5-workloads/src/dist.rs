//! Popularity distributions shared by the workload generators.

use rand::Rng;

/// A Zipf(θ) sampler over `0..n` using the classic cumulative-probability
/// table with binary search — exact, deterministic given the RNG, and fast
/// enough for hundreds of millions of draws.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `0..n` with exponent `theta` (`0` = uniform;
    /// `~0.99` = YCSB-style heavy skew).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: u64, theta: f64) -> ZipfSampler {
        assert!(n > 0, "need a non-empty universe");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be >= 0");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// The universe size.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draws one rank (0 = most popular).
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Deterministically shuffles ranks onto items so that popular ranks are
/// scattered across the address space (real allocators do not place hot
/// objects contiguously). A Feistel-style bijection over `0..n`.
#[derive(Clone, Copy, Debug)]
pub struct Scatter {
    n: u64,
    seed: u64,
}

impl Scatter {
    /// A bijection over `0..n` parameterised by `seed`.
    pub fn new(n: u64, seed: u64) -> Scatter {
        Scatter { n, seed }
    }

    /// Maps rank `i` to a unique item index in `0..n`.
    ///
    /// Classic cycle-walking: iterate a permutation of the enclosing
    /// power-of-two domain until the value lands in `0..n`. Because the
    /// inner step (xorshift ∘ odd-multiplier LCG, both bijective modulo a
    /// power of two) is a permutation of the whole domain, the first
    /// in-range element of each orbit is unique — the composite is a true
    /// bijection on `0..n`.
    #[inline]
    pub fn map(&self, i: u64) -> u64 {
        debug_assert!(i < self.n);
        if self.n == 1 {
            return 0;
        }
        let bits = 64 - (self.n - 1).leading_zeros();
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let mul = (m5_mix(self.seed) | 1) & mask; // odd ⇒ bijective mod 2^bits
        let add = m5_mix(self.seed ^ 0xabcd) & mask;
        let shift = (bits / 2).max(1);
        let mut x = i;
        loop {
            // Bijective on [0, 2^bits): xorshift then LCG.
            x ^= x >> shift;
            x = x.wrapping_mul(mul).wrapping_add(add) & mask;
            if x < self.n {
                return x;
            }
        }
    }
}

/// A deterministic hash for placing slab slot `(page, slot)` at a word
/// offset — stable across runs so the same object always lives at the same
/// place, like a real allocator.
#[inline]
pub fn hash_slot(page: u64, slot: u64, seed: u64) -> u64 {
    m5_mix(page.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ slot.rotate_left(17) ^ seed)
}

#[inline]
fn m5_mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 31)).wrapping_mul(0x7fb5_d329_728e_a185);
    x = (x ^ (x >> 27)).wrapping_mul(0x81da_de5b_de93_80d4);
    x ^ (x >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_zero_theta_is_roughly_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} not ~uniform");
        }
    }

    #[test]
    fn zipf_high_theta_is_head_heavy() {
        let z = ZipfSampler::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut head = 0u32;
        for _ in 0..100_000 {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // The top 1% of keys should take well over a third of accesses.
        assert!(head > 33_000, "head got only {head}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(7, 0.5);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
        assert_eq!(z.n(), 7);
    }

    #[test]
    fn scatter_is_a_bijection() {
        for n in [1u64, 2, 5, 64, 1000] {
            let s = Scatter::new(n, 42);
            let mut seen = std::collections::HashSet::new();
            for i in 0..n {
                let m = s.map(i);
                assert!(m < n);
                assert!(seen.insert(m), "collision at {i} (n={n})");
            }
        }
    }

    #[test]
    fn scatter_depends_on_seed() {
        let a = Scatter::new(1000, 1);
        let b = Scatter::new(1000, 2);
        let diff = (0..1000).filter(|&i| a.map(i) != b.map(i)).count();
        assert!(diff > 900, "seeds should decorrelate ({diff})");
    }
}
