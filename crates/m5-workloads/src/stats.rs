//! Trace fingerprinting: the statistics that define each benchmark's
//! paper role (Figures 4 and 10), computable from any replayable trace.
//!
//! Used by tests to pin workload properties and by users to characterise
//! their own workloads before choosing a Nominator mode (Guidelines 3/4).

use crate::access::ReplayWorkload;
use cxl_sim::addr::{PAGE_SIZE, WORD_SIZE};
use cxl_sim::system::AccessStream;
use std::collections::{HashMap, HashSet};

/// Trace-level fingerprint of a workload.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Total accesses inspected.
    pub accesses: u64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Distinct pages touched.
    pub pages_touched: usize,
    /// Per-page access-count percentile ratios over the median
    /// (`p90/p50`, `p95/p50`, `p99/p50`) — the Figure 10 skew shape.
    pub skew: (f64, f64, f64),
    /// Fraction of touched pages with at most {4, 8, 16, 32, 48} unique
    /// 64 B words accessed — the Figure 4 sparsity profile.
    pub sparsity: [f64; 5],
    /// Operations marked (0 if the workload doesn't mark ops).
    pub ops: u64,
}

impl TraceStats {
    /// Computes the fingerprint of `workload` (consumes a fresh replay).
    pub fn of(workload: &ReplayWorkload) -> TraceStats {
        let mut wl = workload.fresh();
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let mut words: HashMap<u64, HashSet<u8>> = HashMap::new();
        let mut accesses = 0u64;
        let mut writes = 0u64;
        let mut ops = 0u64;
        while let Some(a) = wl.next_access() {
            accesses += 1;
            if a.is_write {
                writes += 1;
            }
            if a.op_end {
                ops += 1;
            }
            let page = a.vaddr.0 / PAGE_SIZE as u64;
            *counts.entry(page).or_default() += 1;
            words
                .entry(page)
                .or_default()
                .insert(((a.vaddr.0 / WORD_SIZE as u64) % 64) as u8);
        }

        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable();
        let pct = |p: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            sorted[((sorted.len() - 1) as f64 * p) as usize] as f64
        };
        let p50 = pct(0.50).max(1.0);

        let total_pages = words.len().max(1) as f64;
        let sparsity = [4u8, 8, 16, 32, 48]
            .map(|t| words.values().filter(|w| w.len() <= t as usize).count() as f64 / total_pages);

        TraceStats {
            accesses,
            write_fraction: if accesses == 0 {
                0.0
            } else {
                writes as f64 / accesses as f64
            },
            pages_touched: counts.len(),
            skew: (pct(0.90) / p50, pct(0.95) / p50, pct(0.99) / p50),
            sparsity,
            ops,
        }
    }

    /// Whether the trace is "sparse-page dominated" in the paper's sense:
    /// a majority of pages have ≤25 % of their words accessed
    /// (Guideline 4 territory — prefer the HWT-driven Nominator).
    pub fn is_sparse_dominated(&self) -> bool {
        self.sparsity[2] > 0.5
    }

    /// Whether the per-page heat is skewed enough that precise hot-page
    /// identification pays (p99 page ≥ 4× the median).
    pub fn is_skewed(&self) -> bool {
        self.skew.2 >= 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{generate, KvConfig};
    use crate::registry::Benchmark;
    use cxl_sim::addr::VirtAddr;

    #[test]
    fn kv_fingerprint_is_sparse_with_ops() {
        let wl = generate(&KvConfig::redis(7 * 300), VirtAddr(0), 60_000);
        let stats = TraceStats::of(&wl);
        assert_eq!(stats.accesses, wl.len() as u64);
        assert!(stats.ops > 10_000);
        assert!(stats.is_sparse_dominated(), "{:?}", stats.sparsity);
        assert!((0.2..0.5).contains(&stats.write_fraction));
    }

    #[test]
    fn roms_fingerprint_is_skewed_not_sparse() {
        let wl = Benchmark::Roms.spec().build(VirtAddr(0), 2_000_000, 1);
        let stats = TraceStats::of(&wl);
        assert!(stats.is_skewed(), "skew = {:?}", stats.skew);
        assert!(!stats.is_sparse_dominated());
    }

    #[test]
    fn stencil_fingerprint_is_flat_and_dense() {
        let wl = Benchmark::Fotonik3d.spec().build(VirtAddr(0), 1_500_000, 1);
        let stats = TraceStats::of(&wl);
        assert!(!stats.is_skewed(), "skew = {:?}", stats.skew);
        assert!(stats.sparsity[4] < 0.1, "dense pages expected");
        assert!(stats.pages_touched > 1000);
    }

    #[test]
    fn empty_trace_is_degenerate_but_safe() {
        let rec = crate::access::AccessRecorder::new();
        let wl = rec.into_workload("empty", VirtAddr(0));
        let stats = TraceStats::of(&wl);
        assert_eq!(stats.accesses, 0);
        assert_eq!(stats.pages_touched, 0);
        assert_eq!(stats.write_fraction, 0.0);
    }
}
