//! Liblinear proxy: sparse mini-batch SGD for linear classification over
//! a KDD-2012-like design matrix.
//!
//! Access structure per training sample:
//!
//! * a **sequential** pass over the sample's feature-index list (the CSR
//!   data region — large, streamed once per epoch, cold),
//! * **random** reads of `w[f]` for each nonzero feature — feature
//!   popularity is heavily Zipf-distributed in KDD-style data, so a small
//!   set of weight pages is very hot (the skew that makes Liblinear one of
//!   M5's biggest Figure 9 wins), and
//! * periodic weight updates (writes) at the end of each mini-batch.
//!
//! Only a fraction of the feature space ever occurs, so weight pages have
//! a moderate number of distinct words touched — the paper's Figure 4
//! reports 15 % of Liblinear pages with ≤25 % of words accessed.

use crate::access::{AccessRecorder, ReplayWorkload};
use crate::dist::ZipfSampler;
use cxl_sim::addr::{VirtAddr, PAGE_SIZE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PAGE: u64 = PAGE_SIZE as u64;

/// Liblinear workload configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LiblinearConfig {
    /// Feature-space size (weight vector length).
    pub n_features: u64,
    /// Nonzero features per sample.
    pub nnz_per_sample: usize,
    /// Samples per mini-batch (weights written once per batch).
    pub batch: usize,
    /// Feature-popularity skew.
    pub zipf_theta: f64,
    /// Bytes of sample data per nonzero (index + value).
    pub bytes_per_nnz: u64,
    /// Sample-data region pages.
    pub data_pages: u64,
    /// RNG seed.
    pub seed: u64,
}

impl LiblinearConfig {
    /// A KDD-2012-flavoured preset sized to `weight_pages` of weights plus
    /// `data_pages` of streamed sample data.
    pub fn kdd(weight_pages: u64, data_pages: u64) -> LiblinearConfig {
        LiblinearConfig {
            n_features: weight_pages * PAGE / 8,
            nnz_per_sample: 24,
            batch: 16,
            zipf_theta: 0.9,
            bytes_per_nnz: 8,
            data_pages,
            seed: 0x11b1,
        }
    }

    /// Pages of the weight vector.
    pub fn weight_pages(&self) -> u64 {
        (self.n_features * 8).div_ceil(PAGE)
    }

    /// Total region pages.
    pub fn footprint_pages(&self) -> u64 {
        self.weight_pages() + self.data_pages
    }
}

/// Generates a training trace of ~`target_accesses` accesses.
///
/// Feature ids in KDD-style data correlate with frequency (common
/// features have low ids), so hot weights *cluster in the leading weight
/// pages* — that clustering is what produces the strong page-level skew
/// the paper measures with PAC (Figure 10), and it must survive cache
/// filtering: the hot page set (hundreds of pages) is deliberately larger
/// than the LLC. Within a page, only a per-page subset of words is ever
/// an active feature, giving the moderate sparsity of Figure 4.
pub fn generate(config: &LiblinearConfig, base: VirtAddr, target_accesses: u64) -> ReplayWorkload {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let weight_pages = config.weight_pages();
    let page_zipf = ZipfSampler::new(weight_pages, config.zipf_theta);
    let weights_bytes = weight_pages * PAGE;
    let data_bytes = config.data_pages * PAGE;
    // Words per page that ever hold an active feature: 12..=63.
    let active_words = |page: u64| 12 + crate::dist::hash_slot(page, 1, config.seed) % 52;

    let mut rec = AccessRecorder::with_capacity(target_accesses as usize + 64);
    let mut data_cursor = 0u64;
    'outer: while (rec.len() as u64) < target_accesses {
        // One mini-batch.
        let mut touched: Vec<u64> = Vec::with_capacity(config.batch * config.nnz_per_sample);
        for _ in 0..config.batch {
            for _ in 0..config.nnz_per_sample {
                // Stream the sample's (index, value) pair.
                rec.read(weights_bytes + data_cursor);
                data_cursor = (data_cursor + config.bytes_per_nnz) % data_bytes;
                // Gather the weight: hot pages are the low-id ones.
                let page = page_zipf.sample(&mut rng);
                let n_words = active_words(page);
                let word_slot = rng.gen_range(0..n_words);
                // Spread the active slots over the page deterministically.
                let word = crate::dist::hash_slot(page, word_slot, config.seed ^ 0x17) % 64;
                let w_addr = page * PAGE + word * 64;
                rec.read(w_addr);
                touched.push(w_addr);
            }
            rec.mark_op_end();
            if rec.len() as u64 >= target_accesses {
                break 'outer;
            }
        }
        // Gradient step: scatter the updates back.
        for &w_addr in &touched {
            rec.write(w_addr);
        }
    }
    rec.into_workload("liblinear", base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::system::AccessStream;
    use std::collections::HashMap;

    #[test]
    fn footprint_composition() {
        let c = LiblinearConfig::kdd(100, 400);
        assert_eq!(c.weight_pages(), 100);
        assert_eq!(c.footprint_pages(), 500);
    }

    #[test]
    fn trace_stays_in_bounds() {
        let c = LiblinearConfig::kdd(50, 100);
        let wl = generate(&c, VirtAddr(0), 50_000);
        assert!(wl.len() >= 50_000);
        assert!(wl.max_extent() <= c.footprint_pages() * PAGE);
    }

    #[test]
    fn weight_pages_are_hot_and_skewed_data_pages_cold() {
        let c = LiblinearConfig::kdd(50, 200);
        let mut wl = generate(&c, VirtAddr(0), 400_000);
        let weights_bytes = c.weight_pages() * PAGE;
        let mut weight_counts: HashMap<u64, u64> = HashMap::new();
        let mut data_accesses = 0u64;
        let mut weight_accesses = 0u64;
        while let Some(a) = wl.next_access() {
            if a.vaddr.0 < weights_bytes {
                weight_accesses += 1;
                *weight_counts.entry(a.vaddr.0 / PAGE).or_default() += 1;
            } else {
                data_accesses += 1;
            }
        }
        assert!(weight_accesses > data_accesses, "gathers dominate streams");
        // Zipf features: the hottest weight page should far exceed the
        // median one.
        let mut v: Vec<u64> = weight_counts.values().copied().collect();
        v.sort_unstable();
        assert!(v[v.len() - 1] > v[v.len() / 2] * 3, "{v:?}");
    }

    #[test]
    fn has_write_phase_and_op_markers() {
        let c = LiblinearConfig::kdd(20, 50);
        let mut wl = generate(&c, VirtAddr(0), 100_000);
        let mut writes = 0;
        let mut ops = 0;
        while let Some(a) = wl.next_access() {
            if a.is_write {
                writes += 1;
            }
            if a.op_end {
                ops += 1;
            }
        }
        assert!(writes > 0);
        assert!(ops > 100);
    }
}
