//! Proxies for the four most memory-intensive SPECrate CPU 2017
//! benchmarks the paper evaluates (Table 3): `mcf_r`, `cactuBSSN_r`,
//! `fotonik3d_r`, and `roms_r`.
//!
//! Reproduced fingerprints:
//!
//! * All four access pages **densely** (≥75 % of words in 87–92 % of
//!   pages, Figure 4) — except `roms`, the paper's SPEC outlier, whose
//!   strided plane updates leave some pages partially touched.
//! * `roms` has the strongly skewed per-page distribution of Figure 10
//!   (p90/p95/p99 ≈ 2×/8×/17× of the p50 page) — which is why M5's
//!   precision pays off most there (96 % over ANB).
//! * `cactuBSSN` and `fotonik3d` are uniform stencil sweeps — every
//!   page equally hot, so even imprecise solutions identify "true" hot
//!   pages (the Figure 3 outliers with high access-count ratios).
//! * `mcf` is pointer chasing over arc/node arrays with mild popularity
//!   skew.

use crate::access::{AccessRecorder, ReplayWorkload};
use crate::dist::{Scatter, ZipfSampler};
use cxl_sim::addr::{VirtAddr, PAGE_SIZE, WORD_SIZE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PAGE: u64 = PAGE_SIZE as u64;
const WORD: u64 = WORD_SIZE as u64;

/// `mcf_r`: single-depot vehicle scheduling — network-simplex pointer
/// chasing over node and arc arrays.
pub fn mcf(pages: u64, base: VirtAddr, target_accesses: u64, seed: u64) -> ReplayWorkload {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Mild page-popularity skew: spanning-tree nodes near the root are
    // revisited far more often.
    let zipf = ZipfSampler::new(pages, 0.6);
    let scatter = Scatter::new(pages, seed ^ 0x3cf);
    let mut rec = AccessRecorder::with_capacity(target_accesses as usize + 8);
    while (rec.len() as u64) < target_accesses {
        let page = scatter.map(zipf.sample(&mut rng));
        // A node visit touches a small run of words (node struct + arc
        // data), uniformly placed — over time the whole page is covered
        // (dense pages).
        let w0 = rng.gen_range(0u64..61);
        for w in w0..w0 + 3 {
            rec.read(page * PAGE + w * WORD);
        }
        // Occasional cost update write.
        if rng.gen::<f64>() < 0.2 {
            rec.write(page * PAGE + w0 * WORD);
        }
    }
    rec.into_workload("mcf", base)
}

/// A dense 3-D stencil sweep shared by the `cactuBSSN`/`fotonik3d`
/// proxies: repeated full-footprint passes; `reads_per_write` shapes the
/// read/write mix, `step_words` the spatial stride.
fn stencil(
    name: &'static str,
    pages: u64,
    base: VirtAddr,
    target_accesses: u64,
    reads_per_write: u64,
    step_words: u64,
) -> ReplayWorkload {
    let mut rec = AccessRecorder::with_capacity(target_accesses as usize + 8);
    let mut emitted = 0u64;
    'outer: loop {
        for page in 0..pages {
            let mut w = 0u64;
            while w < 64 {
                for r in 0..reads_per_write {
                    // Neighbouring planes: same word in adjacent pages.
                    let p = (page + r) % pages;
                    rec.read(p * PAGE + w * WORD);
                }
                rec.write(page * PAGE + w * WORD);
                emitted += reads_per_write + 1;
                if emitted >= target_accesses {
                    break 'outer;
                }
                w += step_words;
            }
        }
    }
    rec.into_workload(name, base)
}

/// `cactuBSSN_r`: Einstein-equation stencil, read-heavy, fully dense.
pub fn cactubssn(pages: u64, base: VirtAddr, target_accesses: u64, _seed: u64) -> ReplayWorkload {
    stencil("cactuBSSN", pages, base, target_accesses, 3, 1)
}

/// `fotonik3d_r`: photonic FDTD sweep, balanced read/write, fully dense.
pub fn fotonik3d(pages: u64, base: VirtAddr, target_accesses: u64, _seed: u64) -> ReplayWorkload {
    stencil("fotonik3d", pages, base, target_accesses, 2, 1)
}

/// `roms_r`: free-surface ocean model. A baseline sweep touches every
/// plane once per step, while boundary/surface planes are revisited many
/// times — producing the heavy-tailed Figure 10 distribution (p90 ≈ 2×,
/// p95 ≈ 8×, p99 ≈ 17× of the p50 page) — and some planes are updated
/// with a 4-word stride, leaving partially-touched pages (the Figure 4
/// SPEC outlier).
pub fn roms(pages: u64, base: VirtAddr, target_accesses: u64, seed: u64) -> ReplayWorkload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let scatter = Scatter::new(pages, seed ^ 0x05ea);
    // Page weight classes placed so the sorted per-page counts reproduce
    // Figure 10's percentile ratios: the p99 page ≈ 17×, p95 ≈ 8×, and
    // p90 ≈ 2× the p50 page. (Strided planes only come from the baseline
    // class, so they sink below p50 without disturbing the hot tail.)
    let weight_of = |page: u64| -> u64 {
        let rank = scatter.map(page); // decorrelate class from address
        let frac = rank as f64 / pages as f64;
        if frac < 0.02 {
            17
        } else if frac < 0.08 {
            8
        } else if frac < 0.13 {
            2
        } else {
            1
        }
    };
    let stride_scatter = Scatter::new(pages, seed ^ 0x57f1);

    // Hot-plane revisits must be *temporally spread* across the sweep, or
    // the LLC absorbs the repeats and the skew disappears at DRAM level —
    // where PAC, the trackers, and the migration pay-off all live. We
    // interleave: after every baseline plane, with probability
    // (total extra visits / pages) we update one hot plane drawn from the
    // extra-visit distribution, so a 17× plane's revisits land ~pages/16
    // planes apart (far beyond LLC reach).
    let hot_pages: Vec<(u64, u64)> = (0..pages)
        .filter_map(|p| {
            let w = weight_of(p);
            (w > 1).then_some((p, w - 1))
        })
        .collect();
    let extra_total: u64 = hot_pages.iter().map(|&(_, e)| e).sum();
    // Cumulative distribution over hot pages, weighted by extra visits.
    let mut hot_cdf: Vec<(u64, u64)> = Vec::with_capacity(hot_pages.len());
    let mut acc = 0;
    for &(p, e) in &hot_pages {
        acc += e;
        hot_cdf.push((acc, p));
    }
    let p_extra = extra_total as f64 / pages as f64;

    let mut rec = AccessRecorder::with_capacity(target_accesses as usize + 80);
    let visit = |rec: &mut AccessRecorder, page: u64, stride: u64, rng: &mut SmallRng| {
        let mut w = 0u64;
        while w < 64 {
            if rng.gen::<f64>() < 0.3 {
                rec.write(page * PAGE + w * WORD);
            } else {
                rec.read(page * PAGE + w * WORD);
            }
            w += stride;
        }
    };
    'outer: loop {
        for page in 0..pages {
            // Baseline pass over every plane; a quarter of the baseline
            // planes are strided (the Figure 4 partial-page outlier).
            let stride = if weight_of(page) == 1 && stride_scatter.map(page).is_multiple_of(4) {
                4
            } else {
                1
            };
            visit(&mut rec, page, stride, &mut rng);
            // Interleaved hot-plane updates: `p_extra` per baseline plane
            // in expectation (integer part + Bernoulli remainder).
            if extra_total > 0 {
                let n_extra = p_extra as u64 + u64::from(rng.gen::<f64>() < p_extra.fract());
                for _ in 0..n_extra {
                    let draw = rng.gen_range(0..extra_total);
                    let idx = hot_cdf.partition_point(|&(c, _)| c <= draw);
                    let hot = hot_cdf[idx.min(hot_cdf.len() - 1)].1;
                    visit(&mut rec, hot, 1, &mut rng);
                }
            }
            if rec.len() as u64 >= target_accesses {
                break 'outer;
            }
        }
    }
    rec.into_workload("roms", base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::system::AccessStream;
    use std::collections::HashMap;

    fn page_counts(wl: &ReplayWorkload) -> HashMap<u64, u64> {
        let mut wl = wl.fresh();
        let mut counts = HashMap::new();
        while let Some(a) = wl.next_access() {
            *counts.entry(a.vaddr.0 / PAGE).or_insert(0u64) += 1;
        }
        counts
    }

    fn unique_words(wl: &ReplayWorkload) -> HashMap<u64, std::collections::HashSet<u64>> {
        let mut wl = wl.fresh();
        let mut words: HashMap<u64, std::collections::HashSet<u64>> = HashMap::new();
        while let Some(a) = wl.next_access() {
            words
                .entry(a.vaddr.0 / PAGE)
                .or_default()
                .insert((a.vaddr.0 / WORD) % 64);
        }
        words
    }

    #[test]
    fn stencils_touch_every_page_equally_and_densely() {
        for gen in [cactubssn, fotonik3d] {
            let wl = gen(64, VirtAddr(0), 64 * 64 * 4 * 3, 1);
            let counts = page_counts(&wl);
            assert_eq!(counts.len(), 64, "all pages touched");
            let max = counts.values().max().unwrap();
            let min = counts.values().min().unwrap();
            assert!(max / min.max(&1) <= 3, "uniform-ish: {min}..{max}");
            let words = unique_words(&wl);
            let dense = words.values().filter(|w| w.len() >= 48).count();
            assert!(dense as f64 / words.len() as f64 > 0.85, "dense pages");
        }
    }

    #[test]
    fn roms_matches_the_figure_10_skew_shape() {
        let pages = 1000;
        let wl = roms(pages, VirtAddr(0), 3_000_000, 7);
        let counts = page_counts(&wl);
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable();
        let pct = |p: f64| v[((v.len() - 1) as f64 * p) as usize] as f64;
        let p50 = pct(0.50);
        assert!(pct(0.90) / p50 >= 1.6, "p90 ratio {}", pct(0.90) / p50);
        assert!(pct(0.95) / p50 >= 5.0, "p95 ratio {}", pct(0.95) / p50);
        assert!(pct(0.99) / p50 >= 12.0, "p99 ratio {}", pct(0.99) / p50);
    }

    #[test]
    fn roms_has_some_partially_touched_pages() {
        let wl = roms(200, VirtAddr(0), 400_000, 7);
        let words = unique_words(&wl);
        let partial = words.values().filter(|w| w.len() <= 16).count();
        assert!(partial > 0, "some strided planes stay partial");
    }

    #[test]
    fn mcf_is_dense_with_mild_skew() {
        let wl = mcf(256, VirtAddr(0), 1_500_000, 9);
        let counts = page_counts(&wl);
        assert_eq!(counts.len(), 256);
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable();
        let skew = v[v.len() - 1] as f64 / v[v.len() / 2] as f64;
        assert!(
            skew > 2.0,
            "hottest page should dominate the median ({skew})"
        );
        let words = unique_words(&wl);
        let dense = words.values().filter(|w| w.len() >= 48).count();
        assert!(
            dense as f64 / words.len() as f64 > 0.7,
            "mcf pages are dense"
        );
    }

    #[test]
    fn traces_respect_the_target_length() {
        for gen in [mcf, cactubssn, fotonik3d, roms] {
            let wl = gen(32, VirtAddr(0), 10_000, 1);
            let n = wl.len() as u64;
            assert!((10_000..10_200).contains(&n), "trace length {n}");
        }
    }

    #[test]
    fn traces_stay_within_the_declared_footprint() {
        for gen in [mcf, cactubssn, fotonik3d, roms] {
            let wl = gen(32, VirtAddr(0), 50_000, 1);
            assert!(wl.max_extent() <= 32 * PAGE);
        }
    }
}
