//! The replayable access trace all workload generators produce.
//!
//! Generators record *region-relative* accesses once; a [`ReplayWorkload`]
//! binds the trace to a concrete region base at run time. Because the trace
//! is immutable and cheaply cloneable (`Arc`), the same byte-identical
//! access stream can be replayed under every migration daemon — removing
//! workload noise from cross-daemon comparisons, exactly like replaying a
//! recorded trace on real hardware.

use cxl_sim::addr::VirtAddr;
use cxl_sim::chunk::AccessChunk;
use cxl_sim::system::{Access, AccessStream};
use std::sync::Arc;

// The recorded-trace word layout *is* the chunk word layout (addresses are
// region-relative here, absolute there), so replay fills chunks with a
// single rebase pass.
const WRITE_BIT: u64 = cxl_sim::chunk::CHUNK_WRITE_BIT;
const OP_END_BIT: u64 = cxl_sim::chunk::CHUNK_OP_END_BIT;
const ADDR_MASK: u64 = cxl_sim::chunk::CHUNK_ADDR_MASK;

/// Records region-relative accesses during workload generation.
#[derive(Clone, Debug, Default)]
pub struct AccessRecorder {
    buf: Vec<u64>,
}

impl AccessRecorder {
    /// An empty recorder.
    pub fn new() -> AccessRecorder {
        AccessRecorder::default()
    }

    /// A recorder pre-sized for `n` accesses.
    pub fn with_capacity(n: usize) -> AccessRecorder {
        AccessRecorder {
            buf: Vec::with_capacity(n),
        }
    }

    /// Records one access at region-relative byte offset `rel`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rel` does not fit in 48 bits.
    #[inline]
    pub fn push(&mut self, rel: u64, is_write: bool, op_end: bool) {
        debug_assert!(rel <= ADDR_MASK, "relative offset overflows 48 bits");
        let mut w = rel;
        if is_write {
            w |= WRITE_BIT;
        }
        if op_end {
            w |= OP_END_BIT;
        }
        self.buf.push(w);
    }

    /// Records a read.
    #[inline]
    pub fn read(&mut self, rel: u64) {
        self.push(rel, false, false);
    }

    /// Records a write.
    #[inline]
    pub fn write(&mut self, rel: u64) {
        self.push(rel, true, false);
    }

    /// Number of accesses recorded.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Marks the most recent access as the end of an operation.
    pub fn mark_op_end(&mut self) {
        if let Some(last) = self.buf.last_mut() {
            *last |= OP_END_BIT;
        }
    }

    /// Finalises the trace into a replayable workload named `name`.
    pub fn into_workload(self, name: impl Into<String>, base: VirtAddr) -> ReplayWorkload {
        ReplayWorkload {
            name: name.into(),
            trace: Arc::new(self.buf),
            base,
            pos: 0,
        }
    }
}

/// An immutable recorded trace bound to a region base.
#[derive(Clone, Debug)]
pub struct ReplayWorkload {
    name: String,
    trace: Arc<Vec<u64>>,
    base: VirtAddr,
    pos: usize,
}

impl ReplayWorkload {
    /// The workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total accesses in the trace.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// A fresh replay of the same trace from the start (cheap: the trace is
    /// shared).
    pub fn fresh(&self) -> ReplayWorkload {
        ReplayWorkload {
            name: self.name.clone(),
            trace: Arc::clone(&self.trace),
            base: self.base,
            pos: 0,
        }
    }

    /// The same trace re-bound to a different region base.
    pub fn rebased(&self, base: VirtAddr) -> ReplayWorkload {
        ReplayWorkload {
            name: self.name.clone(),
            trace: Arc::clone(&self.trace),
            base,
            pos: 0,
        }
    }

    /// The replay cursor: accesses consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Moves the replay cursor, clamped to the trace length. A run
    /// checkpoint records [`ReplayWorkload::pos`]; the restoring side
    /// regenerates the same trace from its spec and seeks back here.
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos.min(self.trace.len());
    }

    /// The highest region-relative byte offset touched, plus one (the
    /// region size the trace needs).
    pub fn max_extent(&self) -> u64 {
        self.trace
            .iter()
            .map(|w| (w & ADDR_MASK) + 1)
            .max()
            .unwrap_or(0)
    }
}

impl AccessStream for ReplayWorkload {
    #[inline]
    fn next_access(&mut self) -> Option<Access> {
        let w = *self.trace.get(self.pos)?;
        self.pos += 1;
        Some(Access {
            vaddr: VirtAddr(self.base.0 + (w & ADDR_MASK)),
            is_write: w & WRITE_BIT != 0,
            op_end: w & OP_END_BIT != 0,
        })
    }

    /// Bulk path: the trace is already in chunk word format, so filling is
    /// one rebase-and-copy pass over the next slice of the trace.
    fn fill_chunk(&mut self, chunk: &mut AccessChunk) -> usize {
        let n = chunk.extend_rebased(&self.trace[self.pos..], self.base);
        self.pos += n;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_flags_and_offsets() {
        let mut rec = AccessRecorder::new();
        rec.read(0);
        rec.write(4096 + 64);
        rec.push(8192, false, true);
        let mut wl = rec.into_workload("t", VirtAddr(1 << 20));
        assert_eq!(wl.len(), 3);
        let a = wl.next_access().unwrap();
        assert_eq!(a.vaddr, VirtAddr(1 << 20));
        assert!(!a.is_write && !a.op_end);
        let b = wl.next_access().unwrap();
        assert_eq!(b.vaddr, VirtAddr((1 << 20) + 4160));
        assert!(b.is_write);
        let c = wl.next_access().unwrap();
        assert!(c.op_end);
        assert!(wl.next_access().is_none());
    }

    #[test]
    fn fresh_replays_identically() {
        let mut rec = AccessRecorder::new();
        for i in 0..10 {
            rec.read(i * 64);
        }
        let mut a = rec.into_workload("t", VirtAddr(0));
        let mut b = a.fresh();
        while let (Some(x), Some(y)) = (a.next_access(), b.next_access()) {
            assert_eq!(x, y);
        }
        let mut c = b.fresh();
        assert!(c.next_access().is_some(), "fresh resets the cursor");
    }

    #[test]
    fn mark_op_end_applies_to_last() {
        let mut rec = AccessRecorder::new();
        rec.read(0);
        rec.read(64);
        rec.mark_op_end();
        let mut wl = rec.into_workload("t", VirtAddr(0));
        assert!(!wl.next_access().unwrap().op_end);
        assert!(wl.next_access().unwrap().op_end);
    }

    #[test]
    fn seek_resumes_exactly_where_pos_left_off() {
        let mut rec = AccessRecorder::new();
        for i in 0..20 {
            rec.read(i * 64);
        }
        let mut a = rec.into_workload("t", VirtAddr(0));
        for _ in 0..7 {
            a.next_access();
        }
        let mut b = a.fresh();
        b.seek(a.pos());
        assert_eq!(b.pos(), 7);
        while let (Some(x), Some(y)) = (a.next_access(), b.next_access()) {
            assert_eq!(x, y);
        }
        assert!(a.next_access().is_none() && b.next_access().is_none());
        // Seeking past the end clamps: the stream is exhausted, not UB.
        let mut c = b.fresh();
        c.seek(usize::MAX);
        assert!(c.next_access().is_none());
    }

    #[test]
    fn rebase_and_extent() {
        let mut rec = AccessRecorder::new();
        rec.read(12345);
        let wl = rec.into_workload("t", VirtAddr(0));
        assert_eq!(wl.max_extent(), 12346);
        let mut moved = wl.rebased(VirtAddr(4096));
        assert_eq!(moved.next_access().unwrap().vaddr, VirtAddr(4096 + 12345));
    }
}
