//! The named benchmark registry: the paper's twelve Table 3 workloads
//! (plus the Memcached and CacheLib variants of Figure 4) at simulator
//! scale.
//!
//! Footprints are scaled ~200× down from the paper's 5–7 GB (to ~32 MiB
//! class) so a full figure harness runs in seconds; the *ratios* that
//! matter — footprint : DDR capacity (2:1), footprint : LLC, hot-set
//! skew, page sparsity — are preserved.

use crate::access::ReplayWorkload;
use crate::graph::{CsrGraph, GapKernel};
use crate::kv::{self, KvConfig};
use crate::liblinear::{self, LiblinearConfig};
use crate::spec;
use cxl_sim::addr::VirtAddr;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The evaluated benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Liblinear on KDD-2012-like data.
    Liblinear,
    /// GAP betweenness centrality (directed web graph).
    Bc,
    /// GAP breadth-first search (undirected social graph).
    Bfs,
    /// GAP connected components.
    Cc,
    /// GAP PageRank.
    Pr,
    /// GAP single-source shortest paths (directed web graph).
    Sssp,
    /// GAP triangle counting.
    Tc,
    /// SPEC 507.cactuBSSN_r.
    CactuBssn,
    /// SPEC 548.fotonik3d_r.
    Fotonik3d,
    /// SPEC 505.mcf_r.
    Mcf,
    /// SPEC 554.roms_r.
    Roms,
    /// Redis 6.0 under YCSB-A.
    Redis,
    /// Memcached under YCSB-A (Figure 4 only).
    Memcached,
    /// CacheLib under a mildly skewed trace (Figure 4 only).
    CacheLib,
}

impl Benchmark {
    /// The twelve benchmarks of Figures 3 and 9, in the paper's x-axis
    /// order.
    pub const MAIN_TWELVE: [Benchmark; 12] = [
        Benchmark::Liblinear,
        Benchmark::Bc,
        Benchmark::Bfs,
        Benchmark::Cc,
        Benchmark::Pr,
        Benchmark::Sssp,
        Benchmark::Tc,
        Benchmark::CactuBssn,
        Benchmark::Fotonik3d,
        Benchmark::Mcf,
        Benchmark::Roms,
        Benchmark::Redis,
    ];

    /// The Figure 4 set (the twelve plus Memcached and CacheLib).
    pub const FIGURE4: [Benchmark; 14] = [
        Benchmark::Liblinear,
        Benchmark::Bc,
        Benchmark::Bfs,
        Benchmark::Cc,
        Benchmark::Pr,
        Benchmark::Sssp,
        Benchmark::Tc,
        Benchmark::CactuBssn,
        Benchmark::Fotonik3d,
        Benchmark::Mcf,
        Benchmark::Roms,
        Benchmark::Redis,
        Benchmark::Memcached,
        Benchmark::CacheLib,
    ];

    /// The paper's x-axis label.
    pub fn label(self) -> &'static str {
        match self {
            Benchmark::Liblinear => "lib.",
            Benchmark::Bc => "bc",
            Benchmark::Bfs => "bfs",
            Benchmark::Cc => "cc",
            Benchmark::Pr => "pr",
            Benchmark::Sssp => "sssp",
            Benchmark::Tc => "tc",
            Benchmark::CactuBssn => "cactu.",
            Benchmark::Fotonik3d => "foto.",
            Benchmark::Mcf => "mcf",
            Benchmark::Roms => "roms",
            Benchmark::Redis => "redis",
            Benchmark::Memcached => "mcd",
            Benchmark::CacheLib => "c.-lib",
        }
    }

    /// Whether the Figure 9 performance metric is p99 latency (Redis-like)
    /// rather than execution time.
    pub fn scored_by_p99(self) -> bool {
        matches!(
            self,
            Benchmark::Redis | Benchmark::Memcached | Benchmark::CacheLib
        )
    }

    /// This benchmark's ready-to-build specification.
    pub fn spec(self) -> WorkloadSpec {
        let footprint_pages = match self {
            Benchmark::Redis => KvConfig::redis(REDIS_KEYS).footprint_pages(),
            Benchmark::Memcached => KvConfig::memcached(MCD_KEYS).footprint_pages(),
            Benchmark::CacheLib => KvConfig::cachelib(CLIB_KEYS).footprint_pages(),
            Benchmark::Liblinear => LiblinearConfig::kdd(2048, 6144).footprint_pages(),
            Benchmark::Mcf | Benchmark::CactuBssn | Benchmark::Fotonik3d | Benchmark::Roms => {
                SPEC_PAGES
            }
            Benchmark::Bfs | Benchmark::Cc | Benchmark::Pr | Benchmark::Tc => {
                crate::graph::GraphLayout::for_graph(&social_graph()).total_pages
            }
            Benchmark::Bc | Benchmark::Sssp => {
                crate::graph::GraphLayout::for_graph(&web_graph()).total_pages
            }
        };
        WorkloadSpec {
            benchmark: self,
            footprint_pages,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

const REDIS_KEYS: u64 = 7 * 8192;
const MCD_KEYS: u64 = 8 * 8192;
const CLIB_KEYS: u64 = 9 * 8192;
const SPEC_PAGES: u64 = 8192;

/// Per-process graph cache: the social (Twitter-like R-MAT) and web
/// (Google-like uniform) inputs are generated once and shared.
fn graph_cache() -> &'static Mutex<HashMap<&'static str, Arc<CsrGraph>>> {
    static CACHE: OnceLock<Mutex<HashMap<&'static str, Arc<CsrGraph>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The Twitter-graph stand-in (undirected R-MAT, scale 17, degree 16).
pub fn social_graph() -> Arc<CsrGraph> {
    let mut cache = graph_cache().lock().expect("graph cache poisoned");
    Arc::clone(
        cache
            .entry("social")
            .or_insert_with(|| Arc::new(CsrGraph::rmat(17, 16, 0x50c1a1))),
    )
}

/// The Google-web-graph stand-in (directed uniform, 128K vertices).
pub fn web_graph() -> Arc<CsrGraph> {
    let mut cache = graph_cache().lock().expect("graph cache poisoned");
    Arc::clone(
        cache
            .entry("web")
            .or_insert_with(|| Arc::new(CsrGraph::uniform(128 * 1024, 12, 0x90091e))),
    )
}

/// A buildable benchmark description.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Which benchmark this is.
    pub benchmark: Benchmark,
    /// Pages the workload's region must span.
    pub footprint_pages: u64,
}

impl WorkloadSpec {
    /// Generates the trace: ~`target_accesses` accesses starting at
    /// `base`, deterministic in `seed`.
    pub fn build(&self, base: VirtAddr, target_accesses: u64, seed: u64) -> ReplayWorkload {
        match self.benchmark {
            Benchmark::Redis => {
                let mut c = KvConfig::redis(REDIS_KEYS);
                c.seed ^= seed;
                kv::generate(&c, base, target_accesses)
            }
            Benchmark::Memcached => {
                let mut c = KvConfig::memcached(MCD_KEYS);
                c.seed ^= seed;
                kv::generate(&c, base, target_accesses)
            }
            Benchmark::CacheLib => {
                let mut c = KvConfig::cachelib(CLIB_KEYS);
                c.seed ^= seed;
                kv::generate(&c, base, target_accesses)
            }
            Benchmark::Liblinear => {
                let mut c = LiblinearConfig::kdd(2048, 6144);
                c.seed ^= seed;
                liblinear::generate(&c, base, target_accesses)
            }
            Benchmark::Mcf => spec::mcf(SPEC_PAGES, base, target_accesses, seed),
            Benchmark::CactuBssn => spec::cactubssn(SPEC_PAGES, base, target_accesses, seed),
            Benchmark::Fotonik3d => spec::fotonik3d(SPEC_PAGES, base, target_accesses, seed),
            Benchmark::Roms => spec::roms(SPEC_PAGES, base, target_accesses, seed),
            Benchmark::Bfs => {
                crate::graph::generate(GapKernel::Bfs, &social_graph(), base, target_accesses, seed)
            }
            Benchmark::Cc => {
                crate::graph::generate(GapKernel::Cc, &social_graph(), base, target_accesses, seed)
            }
            Benchmark::Pr => {
                crate::graph::generate(GapKernel::Pr, &social_graph(), base, target_accesses, seed)
            }
            Benchmark::Tc => {
                crate::graph::generate(GapKernel::Tc, &social_graph(), base, target_accesses, seed)
            }
            Benchmark::Bc => {
                crate::graph::generate(GapKernel::Bc, &web_graph(), base, target_accesses, seed)
            }
            Benchmark::Sssp => {
                crate::graph::generate(GapKernel::Sssp, &web_graph(), base, target_accesses, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_main_benchmarks_in_paper_order() {
        let labels: Vec<&str> = Benchmark::MAIN_TWELVE.iter().map(|b| b.label()).collect();
        assert_eq!(
            labels,
            [
                "lib.", "bc", "bfs", "cc", "pr", "sssp", "tc", "cactu.", "foto.", "mcf", "roms",
                "redis"
            ]
        );
        assert_eq!(Benchmark::FIGURE4.len(), 14);
    }

    #[test]
    fn only_kv_benchmarks_use_p99() {
        assert!(Benchmark::Redis.scored_by_p99());
        assert!(!Benchmark::Mcf.scored_by_p99());
        assert!(!Benchmark::Pr.scored_by_p99());
    }

    #[test]
    fn every_benchmark_builds_and_fits_its_footprint() {
        use cxl_sim::addr::PAGE_SIZE;
        for b in Benchmark::FIGURE4 {
            let spec = b.spec();
            assert!(spec.footprint_pages > 1000, "{b}: tiny footprint");
            let wl = spec.build(VirtAddr(0), 20_000, 1);
            assert!(wl.len() >= 20_000, "{b}: short trace ({})", wl.len());
            assert!(
                wl.max_extent() <= spec.footprint_pages * PAGE_SIZE as u64,
                "{b}: trace escapes footprint"
            );
        }
    }

    #[test]
    fn graphs_are_cached_and_shared() {
        let a = social_graph();
        let b = social_graph();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.num_vertices(), 128 * 1024);
    }
}
