//! Batch-API equivalence: every native `record_batch`/`offer_batch`/
//! `update_batch` fast path must leave its tracker in **exactly** the
//! state the one-at-a-time loop produces — same counters, same CAM
//! entries, same scratch-independent observable state. The staged access
//! engine feeds trackers through these batch entry points, so any
//! divergence here would silently break the simulator's byte-identical
//! determinism guarantees.
//!
//! Address streams are drawn from a small universe (heavy collisions,
//! repeated keys — the regime where CM-sketch lane ordering and CAM
//! min-replacement tie-breaks could plausibly diverge) and the batch is
//! additionally split at an arbitrary point to check that batching is
//! associative with sequential state.

use m5_trackers::cam::SortedCam;
use m5_trackers::mithril::{GroupedSpaceSaving, MithrilTopK};
use m5_trackers::sketch::CmSketch;
use m5_trackers::topk::{CmSketchTopK, TopKAlgorithm};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CM-sketch: one `update_batch` call == the `update` loop, including
    /// the returned post-increment estimates, at any split point.
    #[test]
    fn cm_sketch_update_batch_matches_loop(
        addrs in prop::collection::vec(0u64..512, 1..600),
        split in 0usize..600,
    ) {
        let mut looped = CmSketch::new(4, 64, 0xfeed);
        let mut batched = looped.clone();
        let loop_ests: Vec<u64> = addrs.iter().map(|&a| looped.update(a)).collect();

        let split = split.min(addrs.len());
        let mut batch_ests: Vec<u64> = Vec::new();
        let mut out = Vec::new();
        for half in [&addrs[..split], &addrs[split..]] {
            if half.is_empty() {
                continue;
            }
            batched.update_batch(half, &mut out);
            batch_ests.extend(out.iter().map(|&e| e as u64));
        }
        prop_assert_eq!(&loop_ests, &batch_ests, "post-increment estimates diverged");
        prop_assert_eq!(format!("{looped:?}"), format!("{batched:?}"));
    }

    /// Sorted CAM: `offer_batch` (with its cached-min fast reject) applies
    /// exactly the offers the sequential `offer` loop applies.
    #[test]
    fn cam_offer_batch_matches_loop(
        pairs in prop::collection::vec((0u64..64, 1u64..32), 1..300),
        k in 1usize..12,
    ) {
        // The contract: offer_batch == the offer loop with the caller-side
        // `count > min_count()` fast-reject (the shape CmSketchTopK uses).
        let mut looped = SortedCam::new(k);
        let mut batched = SortedCam::new(k);
        let applied_loop = pairs
            .iter()
            .filter(|&&(a, c)| c > looped.min_count() && looped.offer(a, c))
            .count();
        let applied_batch = batched.offer_batch(pairs.iter().copied());
        prop_assert_eq!(applied_loop, applied_batch);
        prop_assert_eq!(looped.entries(), batched.entries());

        // And the stronger state claim behind the fast-reject: offering
        // every pair unconditionally lands on the same entries (a rejected
        // offer is a provable state no-op, hit-refresh included).
        let mut plain = SortedCam::new(k);
        for &(a, c) in &pairs {
            plain.offer(a, c);
        }
        prop_assert_eq!(plain.entries(), batched.entries());
    }

    /// CmSketchTopK end to end: the native `record_batch` (batched sketch
    /// lanes + deferred CAM offers) == the default per-access loop.
    #[test]
    fn cm_topk_record_batch_matches_loop(
        addrs in prop::collection::vec(0u64..256, 1..500),
        split in 0usize..500,
    ) {
        let mut looped = CmSketchTopK::new(4, 32, 8, 7);
        let mut batched = looped.clone();
        for &a in &addrs {
            looped.record(a);
        }
        let split = split.min(addrs.len());
        batched.record_batch(&addrs[..split]);
        batched.record_batch(&addrs[split..]);
        prop_assert_eq!(looped.top_k(), batched.top_k());
        prop_assert_eq!(format!("{looped:?}"), format!("{batched:?}"));
    }

    /// Grouped space-saving (mithril): precomputed group indices must not
    /// change tag-hit / free-slot / min-replace decisions.
    #[test]
    fn grouped_ss_update_batch_matches_loop(
        addrs in prop::collection::vec(0u64..128, 1..400),
    ) {
        let mut looped = GroupedSpaceSaving::new(8, 4, 99);
        let mut batched = looped.clone();
        for &a in &addrs {
            looped.update(a);
        }
        batched.update_batch(&addrs);
        prop_assert_eq!(format!("{looped:?}"), format!("{batched:?}"));
    }

    /// MithrilTopK through the trait entry point.
    #[test]
    fn mithril_record_batch_matches_loop(
        addrs in prop::collection::vec(0u64..96, 1..400),
        split in 0usize..400,
    ) {
        let mut looped = MithrilTopK::new(8, 4, 6, 3);
        let mut batched = looped.clone();
        for &a in &addrs {
            looped.record(a);
        }
        let split = split.min(addrs.len());
        batched.record_batch(&addrs[..split]);
        batched.record_batch(&addrs[split..]);
        prop_assert_eq!(looped.top_k(), batched.top_k());
        prop_assert_eq!(format!("{looped:?}"), format!("{batched:?}"));
    }
}
