//! # m5-trackers — streaming top-K hot-address trackers
//!
//! Behavioural models of the hardware trackers evaluated in the M5 paper's
//! design-space exploration (§5.1, §7.1):
//!
//! * [`sketch::CmSketch`] — a Count-Min sketch: `H` hash rows × `W` counters,
//!   returning the minimum of the incremented counters as the estimate,
//! * [`cam::SortedCam`] — the sorted Content-Addressable Memory that keeps
//!   the top-K `(address, count)` pairs,
//! * [`topk::CmSketchTopK`] — the composed CM-Sketch top-K tracker of the
//!   paper's Figure 5 (and of NeoMem),
//! * [`spacesaving::SpaceSaving`] — the Space-Saving / Mithril-style
//!   counter-based alternative,
//! * [`mithril::MithrilTopK`] — the grouped (Mithril-style) Space-Saving
//!   variant cited in §5.1,
//! * [`sticky::StickySampling`] — the sampling-based representative,
//! * [`cost::CostModel`] — an analytic area/power model calibrated against
//!   the paper's Table 4 (7 nm ASIC synthesis) plus the FPGA/ASIC timing
//!   limits on the number of entries `N`.
//!
//! All trackers implement the common [`topk::TopKAlgorithm`] trait, so the
//! design-space harness (`m5-bench/benches/fig07_tracker_dse.rs`) sweeps
//! them uniformly.
//!
//! ```
//! use m5_trackers::topk::{CmSketchTopK, TopKAlgorithm};
//!
//! let mut tracker = CmSketchTopK::new(4, 1024, 5, 0xC0FFEE);
//! for _ in 0..100 {
//!     tracker.record(0xAA);
//! }
//! tracker.record(0xBB);
//! let top = tracker.top_k();
//! assert_eq!(top[0].0, 0xAA);
//! assert!(top[0].1 >= 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cam;
pub mod cost;
pub mod hash;
pub mod mithril;
pub mod sketch;
pub mod spacesaving;
pub mod sticky;
pub mod topk;
