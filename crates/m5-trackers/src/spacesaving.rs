//! The Space-Saving algorithm (Metwally et al., 2005), the counter-based
//! top-K tracker the paper compares CM-Sketch against (it underlies the
//! Mithril Row-Hammer defence).
//!
//! `N` monitored counters. A hit increments its counter; a miss while full
//! evicts the minimum counter, inheriting `min + 1` with error `min`. The
//! classic guarantees hold: every monitored count over-estimates by at most
//! its recorded `error`, and `error ≤ total/N`.
//!
//! The hardware analogue is an `N`-entry CAM that must compare all entries
//! in parallel each cycle — which is why synthesis caps `N` at ~50 (FPGA)
//! or ~2K (7 nm ASIC) under the 400 MHz constraint (§7.1), while CM-Sketch
//! scales to 128K SRAM entries.

use std::collections::HashMap;

/// One monitored counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SsEntry {
    /// The monitored address.
    pub addr: u64,
    /// Estimated count (≥ true count).
    pub count: u64,
    /// Maximum over-estimate inherited at admission.
    pub error: u64,
}

/// Space-Saving with `N` counters.
///
/// Entries are kept sorted *descending* by count in a dense vector; because
/// counts only change by +1, a swap toward the front keeps ordering in
/// amortised O(1), and the eviction victim is always the tail.
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    capacity: usize,
    entries: Vec<SsEntry>,
    index: HashMap<u64, usize>,
    total: u64,
}

impl SpaceSaving {
    /// Builds an empty tracker with `n` counters.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> SpaceSaving {
        assert!(n > 0, "need at least one counter");
        SpaceSaving {
            capacity: n,
            entries: Vec::with_capacity(n),
            index: HashMap::with_capacity(n),
            total: 0,
        }
    }

    /// The number of counters `N`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live monitored addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is monitored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total updates since the last reset.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records one access to `addr`.
    #[inline]
    pub fn update(&mut self, addr: u64) {
        self.total += 1;
        if let Some(&pos) = self.index.get(&addr) {
            self.entries[pos].count += 1;
            self.resift(pos);
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(SsEntry {
                addr,
                count: 1,
                error: 0,
            });
            let pos = self.entries.len() - 1;
            self.index.insert(addr, pos);
            self.resift(pos);
            return;
        }
        // Evict the minimum (the tail) and inherit its count.
        let tail = self.entries.len() - 1;
        let victim = self.entries[tail];
        self.index.remove(&victim.addr);
        self.entries[tail] = SsEntry {
            addr,
            count: victim.count + 1,
            error: victim.count,
        };
        self.index.insert(addr, tail);
        self.resift(tail);
    }

    /// Restores descending order after `pos`'s count was bumped.
    ///
    /// Counts only ever grow to `old + 1` (increment or inherit-min), so the
    /// displaced predecessors form a run of equal counts `old`; swapping with
    /// the run's head preserves order and costs O(log N) via binary search.
    fn resift(&mut self, pos: usize) {
        let c = self.entries[pos].count;
        // First index in [0, pos) whose count is < c (the head of the run of
        // equal `c - 1` counts, if any).
        let head = self.entries[..pos].partition_point(|e| e.count >= c);
        if head < pos {
            debug_assert!(self.entries[head..pos].iter().all(|e| e.count == c - 1));
            self.entries.swap(head, pos);
            self.index.insert(self.entries[head].addr, head);
            self.index.insert(self.entries[pos].addr, pos);
        }
    }

    /// Estimated count for `addr` (`0` if unmonitored).
    pub fn estimate(&self, addr: u64) -> u64 {
        self.index
            .get(&addr)
            .map_or(0, |&pos| self.entries[pos].count)
    }

    /// The `k` hottest monitored entries, hottest first.
    pub fn top_k(&self, k: usize) -> Vec<SsEntry> {
        self.entries.iter().take(k).copied().collect()
    }

    /// All monitored entries, hottest first.
    pub fn entries(&self) -> &[SsEntry] {
        &self.entries
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.total = 0;
    }

    /// Restores previously exported entries (hottest first) and the update
    /// total; the address index is derived state, rebuilt here. Returns
    /// `false` (and leaves the tracker untouched) when `entries` exceeds
    /// the capacity, is not sorted descending by count, or repeats an
    /// address.
    pub fn load_state(&mut self, entries: &[SsEntry], total: u64) -> bool {
        if entries.len() > self.capacity || entries.windows(2).any(|w| w[0].count < w[1].count) {
            return false;
        }
        let mut index = HashMap::with_capacity(self.capacity);
        for (pos, e) in entries.iter().enumerate() {
            if index.insert(e.addr, pos).is_some() {
                return false;
            }
        }
        self.entries.clear();
        self.entries.extend_from_slice(entries);
        self.index = index;
        self.total = total;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_while_under_capacity() {
        let mut ss = SpaceSaving::new(4);
        for _ in 0..5 {
            ss.update(1);
        }
        for _ in 0..3 {
            ss.update(2);
        }
        assert_eq!(ss.estimate(1), 5);
        assert_eq!(ss.estimate(2), 3);
        assert_eq!(ss.top_k(1)[0].addr, 1);
        assert_eq!(ss.top_k(1)[0].error, 0);
    }

    #[test]
    fn eviction_inherits_min_plus_one() {
        let mut ss = SpaceSaving::new(2);
        ss.update(1);
        ss.update(1);
        ss.update(2);
        // 3 misses while full: evicts 2 (count 1), inherits count 2 error 1.
        ss.update(3);
        assert_eq!(ss.estimate(2), 0);
        let e3 = ss.entries().iter().find(|e| e.addr == 3).unwrap();
        assert_eq!(e3.count, 2);
        assert_eq!(e3.error, 1);
    }

    #[test]
    fn overestimate_bounded_by_total_over_n() {
        let mut ss = SpaceSaving::new(8);
        let mut truth = std::collections::HashMap::<u64, u64>::new();
        // Skewed stream over 50 keys.
        let mut x: u64 = 12345;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 50;
            let key = key * key / 50; // skew toward small keys
            ss.update(key);
            *truth.entry(key).or_default() += 1;
        }
        let bound = ss.total() / 8;
        for e in ss.entries() {
            let t = truth[&e.addr];
            assert!(e.count >= t, "never underestimates");
            assert!(e.count - t <= e.error, "error field bounds overestimate");
            assert!(e.error <= bound, "classic error bound");
        }
    }

    #[test]
    fn entries_stay_sorted() {
        let mut ss = SpaceSaving::new(4);
        for k in [1, 2, 3, 1, 3, 3, 4, 5, 1] {
            ss.update(k);
            let counts: Vec<u64> = ss.entries().iter().map(|e| e.count).collect();
            let mut sorted = counts.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(counts, sorted);
        }
    }

    #[test]
    fn reset_clears() {
        let mut ss = SpaceSaving::new(2);
        ss.update(9);
        ss.reset();
        assert!(ss.is_empty());
        assert_eq!(ss.total(), 0);
        assert_eq!(ss.estimate(9), 0);
    }

    #[test]
    fn index_consistency_under_churn() {
        let mut ss = SpaceSaving::new(16);
        let mut x: u64 = 7;
        for _ in 0..50_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ss.update((x >> 40) % 200);
        }
        for (pos, e) in ss.entries().iter().enumerate() {
            assert_eq!(ss.index[&e.addr], pos, "index desync at {pos}");
        }
        assert_eq!(ss.len(), 16);
    }
}
