//! The unified top-K tracker interface and the composed trackers.
//!
//! [`CmSketchTopK`] is the paper's Figure 5 datapath: a CM-Sketch estimates
//! per-address counts and a [`SortedCam`] keeps the K hottest. The
//! Space-Saving and Sticky-Sampling trackers adapt the other two streaming
//! algorithm families to the same interface so the Figure 7 design-space
//! sweep treats all of them uniformly.

use crate::cam::SortedCam;
use crate::sketch::CmSketch;
use crate::spacesaving::SpaceSaving;
use crate::sticky::StickySampling;

/// A streaming top-K hot-address tracker.
pub trait TopKAlgorithm {
    /// Observes one access to `addr`.
    fn record(&mut self, addr: u64);

    /// Observes a batch of accesses, in order.
    ///
    /// Must leave the tracker in exactly the state a [`record`] loop over
    /// `addrs` would — implementations may only restructure work that is
    /// provably order-insensitive (independent sketch rows, cached CAM
    /// minima, hoisted hash lanes). The default simply loops.
    ///
    /// [`record`]: TopKAlgorithm::record
    fn record_batch(&mut self, addrs: &[u64]) {
        for &addr in addrs {
            self.record(addr);
        }
    }

    /// The current top-K `(address, estimated count)` pairs, hottest first.
    fn top_k(&self) -> Vec<(u64, u64)>;

    /// Clears all state — the hardware resets both units immediately after
    /// serving a query so the next epoch starts fresh (§5.1).
    fn reset(&mut self);

    /// Number of tracked counters `N` (the design-space axis of Figure 7).
    fn entries(&self) -> usize;

    /// A short label for reports.
    fn name(&self) -> &'static str;

    /// Serves a query: returns the top-K and resets, as the hardware does.
    fn drain_top_k(&mut self) -> Vec<(u64, u64)> {
        let out = self.top_k();
        self.reset();
        out
    }
}

/// The CM-Sketch top-K tracker (Figure 5): sketch + sorted CAM.
#[derive(Clone, Debug)]
pub struct CmSketchTopK {
    sketch: CmSketch,
    cam: SortedCam,
    /// Batched-record estimate scratch; transient, not exported state.
    est_scratch: Vec<u32>,
}

impl CmSketchTopK {
    /// Builds a tracker with an `h × w` sketch and a `k`-entry CAM.
    pub fn new(h: usize, w: usize, k: usize, seed: u64) -> CmSketchTopK {
        CmSketchTopK {
            sketch: CmSketch::new(h, w, seed),
            cam: SortedCam::new(k),
            est_scratch: Vec::new(),
        }
    }

    /// Builds a tracker parameterised by total sketch entries `n = h × w`.
    pub fn with_total_entries(h: usize, n: usize, k: usize, seed: u64) -> CmSketchTopK {
        CmSketchTopK {
            sketch: CmSketch::with_total_entries(h, n, seed),
            cam: SortedCam::new(k),
            est_scratch: Vec::new(),
        }
    }

    /// The sketch unit.
    pub fn sketch(&self) -> &CmSketch {
        &self.sketch
    }

    /// The CAM unit.
    pub fn cam(&self) -> &SortedCam {
        &self.cam
    }

    /// Restores exported sketch counters and CAM entries into a tracker
    /// rebuilt with the original construction parameters. Returns `false`
    /// (leaving the tracker partially untouched only if the sketch load
    /// already failed) on any geometry or ordering mismatch.
    pub fn load_state(
        &mut self,
        counters: &[u32],
        updates: u64,
        cam: &[crate::cam::CamEntry],
    ) -> bool {
        self.sketch.load_state(counters, updates) && self.cam.load_entries(cam)
    }
}

impl TopKAlgorithm for CmSketchTopK {
    fn record(&mut self, addr: u64) {
        let est = self.sketch.update(addr);
        // Steps 4–6 of Figure 5: tag hit refreshes the entry, miss competes
        // against the CAM's minimum. An estimate that cannot beat the
        // minimum is a provable no-op — sketch counters only grow within
        // an epoch (sketch and CAM reset together), so a tracked address
        // always estimates at least its stored count, itself at least the
        // minimum: `est <= min` means either the address is absent and
        // replace-min would reject it, or its stored count already equals
        // `est` and the refresh changes nothing. Skipping the CAM's tag
        // scan for that case keeps the hot path O(1) per record.
        if est > self.cam.min_count() {
            self.cam.offer(addr, est);
        }
    }

    /// Native batched datapath: one row-major sketch sweep for the whole
    /// batch, then the CAM offers with a cached minimum.
    ///
    /// Equivalent to the [`record`] loop: sketch rows are independent, so
    /// [`CmSketch::update_batch`] produces exactly the per-key estimates
    /// the interleaved order would, and the CAM consumes the same
    /// `(addr, est)` sequence in the same order — deferring each offer
    /// until after later keys' *sketch* updates is invisible because the
    /// CAM's state depends only on the offered sequence.
    ///
    /// [`record`]: TopKAlgorithm::record
    fn record_batch(&mut self, addrs: &[u64]) {
        let mut est = std::mem::take(&mut self.est_scratch);
        self.sketch.update_batch(addrs, &mut est);
        self.cam
            .offer_batch(addrs.iter().zip(est.iter()).map(|(&a, &e)| (a, e as u64)));
        est.clear(); // scratch is dead between calls; keep state canonical
        self.est_scratch = est;
    }

    fn top_k(&self) -> Vec<(u64, u64)> {
        self.cam
            .entries()
            .iter()
            .map(|e| (e.addr, e.count))
            .collect()
    }

    fn reset(&mut self) {
        self.sketch.reset();
        self.cam.reset();
    }

    fn entries(&self) -> usize {
        self.sketch.total_entries()
    }

    fn name(&self) -> &'static str {
        "cm-sketch"
    }
}

/// The Space-Saving top-K tracker: an `N`-entry CAM monitored set from
/// which the hottest `K` are reported.
#[derive(Clone, Debug)]
pub struct SpaceSavingTopK {
    ss: SpaceSaving,
    k: usize,
}

impl SpaceSavingTopK {
    /// Builds a tracker with `n` monitored counters reporting `k` results.
    pub fn new(n: usize, k: usize) -> SpaceSavingTopK {
        SpaceSavingTopK {
            ss: SpaceSaving::new(n),
            k,
        }
    }

    /// The underlying Space-Saving state.
    pub fn inner(&self) -> &SpaceSaving {
        &self.ss
    }

    /// Restores exported Space-Saving entries; see
    /// [`SpaceSaving::load_state`].
    pub fn load_state(&mut self, entries: &[crate::spacesaving::SsEntry], total: u64) -> bool {
        self.ss.load_state(entries, total)
    }
}

impl TopKAlgorithm for SpaceSavingTopK {
    fn record(&mut self, addr: u64) {
        self.ss.update(addr);
    }

    fn top_k(&self) -> Vec<(u64, u64)> {
        self.ss
            .top_k(self.k)
            .into_iter()
            .map(|e| (e.addr, e.count))
            .collect()
    }

    fn reset(&mut self) {
        self.ss.reset();
    }

    fn entries(&self) -> usize {
        self.ss.capacity()
    }

    fn name(&self) -> &'static str {
        "space-saving"
    }
}

/// The Sticky-Sampling top-K tracker.
#[derive(Clone, Debug)]
pub struct StickySamplingTopK {
    sticky: StickySampling,
    k: usize,
    nominal_entries: usize,
}

impl StickySamplingTopK {
    /// Builds a tracker whose first window is `window` updates, reporting
    /// `k` results. `nominal_entries` is the design-space N it represents.
    pub fn new(window: u64, k: usize, nominal_entries: usize, seed: u64) -> StickySamplingTopK {
        StickySamplingTopK {
            sticky: StickySampling::new(window, seed),
            k,
            nominal_entries,
        }
    }
}

impl TopKAlgorithm for StickySamplingTopK {
    fn record(&mut self, addr: u64) {
        self.sticky.update(addr);
    }

    fn top_k(&self) -> Vec<(u64, u64)> {
        self.sticky.top_k(self.k)
    }

    fn reset(&mut self) {
        self.sticky.reset();
    }

    fn entries(&self) -> usize {
        self.nominal_entries
    }

    fn name(&self) -> &'static str {
        "sticky-sampling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// A skewed synthetic stream: key `i` appears ~proportionally to
    /// `1/(i+1)`.
    fn zipf_stream(n_keys: u64, len: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..n_keys).map(|i| 1.0 / (i + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        (0..len)
            .map(|_| {
                let mut x = rng.gen::<f64>() * total;
                for (i, w) in weights.iter().enumerate() {
                    if x < *w {
                        return i as u64;
                    }
                    x -= w;
                }
                n_keys - 1
            })
            .collect()
    }

    fn exact_top_k(stream: &[u64], k: usize) -> Vec<u64> {
        let mut counts = std::collections::HashMap::<u64, u64>::new();
        for &a in stream {
            *counts.entry(a).or_default() += 1;
        }
        let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.into_iter().take(k).map(|(a, _)| a).collect()
    }

    fn run<T: TopKAlgorithm>(t: &mut T, stream: &[u64]) {
        for &a in stream {
            t.record(a);
        }
    }

    #[test]
    fn all_trackers_find_the_hottest_key_in_a_skewed_stream() {
        let stream = zipf_stream(500, 50_000, 11);
        let expect = exact_top_k(&stream, 1)[0];

        let mut cm = CmSketchTopK::with_total_entries(4, 8192, 5, 1);
        run(&mut cm, &stream);
        assert_eq!(cm.top_k()[0].0, expect, "cm-sketch");

        let mut ss = SpaceSavingTopK::new(256, 5);
        run(&mut ss, &stream);
        assert_eq!(ss.top_k()[0].0, expect, "space-saving");

        let mut st = StickySamplingTopK::new(4096, 5, 4096, 2);
        run(&mut st, &stream);
        assert_eq!(st.top_k()[0].0, expect, "sticky-sampling");
    }

    #[test]
    fn cm_sketch_precision_improves_with_n() {
        // The paper's core DSE finding: bigger N → fewer collisions → the
        // reported top-K overlaps the exact top-K more.
        let stream = zipf_stream(2000, 100_000, 5);
        let exact: std::collections::HashSet<u64> = exact_top_k(&stream, 5).into_iter().collect();

        let overlap = |n: usize| {
            let mut t = CmSketchTopK::with_total_entries(4, n, 5, 7);
            run(&mut t, &stream);
            t.top_k().iter().filter(|(a, _)| exact.contains(a)).count()
        };
        let small = overlap(64);
        let large = overlap(32 * 1024);
        assert!(large >= small, "N=32K ({large}) vs N=64 ({small})");
        assert!(large >= 4, "N=32K should find nearly all of the top 5");
    }

    #[test]
    fn drain_resets_state() {
        let mut t = CmSketchTopK::new(2, 64, 3, 0);
        t.record(9);
        t.record(9);
        let first = t.drain_top_k();
        assert_eq!(first[0], (9, 2));
        assert!(t.top_k().is_empty());
        assert_eq!(t.sketch().estimate(9), 0);
    }

    #[test]
    fn trait_objects_are_usable() {
        let mut trackers: Vec<Box<dyn TopKAlgorithm>> = vec![
            Box::new(CmSketchTopK::new(4, 128, 5, 0)),
            Box::new(SpaceSavingTopK::new(50, 5)),
            Box::new(StickySamplingTopK::new(128, 5, 128, 0)),
        ];
        for t in &mut trackers {
            for _ in 0..10 {
                t.record(1);
            }
            assert_eq!(t.top_k()[0].0, 1, "{}", t.name());
            assert!(t.entries() > 0);
        }
    }

    #[test]
    fn state_export_import_roundtrips_mid_epoch() {
        let stream = zipf_stream(200, 5_000, 3);
        let (head, tail) = stream.split_at(2_500);

        // CM-Sketch: rebuild from construction params, load mid-epoch
        // state, and the continued run must match the uninterrupted one.
        let mut a = CmSketchTopK::with_total_entries(4, 1024, 5, 9);
        run(&mut a, &stream);
        let mut b = CmSketchTopK::with_total_entries(4, 1024, 5, 9);
        run(&mut b, head);
        let (counters, updates, cam) = (
            b.sketch().counters().to_vec(),
            b.sketch().updates(),
            b.cam().entries().to_vec(),
        );
        let mut b2 = CmSketchTopK::with_total_entries(4, 1024, 5, 9);
        assert!(b2.load_state(&counters, updates, &cam));
        run(&mut b2, tail);
        assert_eq!(a.top_k(), b2.top_k());
        assert_eq!(a.sketch().updates(), b2.sketch().updates());

        // Space-Saving likewise.
        let mut sa = SpaceSavingTopK::new(64, 5);
        run(&mut sa, &stream);
        let mut sb = SpaceSavingTopK::new(64, 5);
        run(&mut sb, head);
        let (entries, total) = (sb.inner().entries().to_vec(), sb.inner().total());
        let mut sb2 = SpaceSavingTopK::new(64, 5);
        assert!(sb2.load_state(&entries, total));
        run(&mut sb2, tail);
        assert_eq!(sa.top_k(), sb2.top_k());

        // Geometry/ordering violations are rejected.
        let mut bad = CmSketchTopK::with_total_entries(4, 1024, 5, 9);
        assert!(!bad.load_state(&counters[..3], updates, &cam));
        let unsorted = vec![
            crate::cam::CamEntry { addr: 1, count: 1 },
            crate::cam::CamEntry { addr: 2, count: 9 },
        ];
        assert!(!bad.load_state(&counters, updates, &unsorted));
        let mut ss_bad = SpaceSavingTopK::new(1, 1);
        assert!(!ss_bad.load_state(&entries, total), "over capacity");
    }

    #[test]
    fn cam_counts_come_from_the_sketch() {
        let mut t = CmSketchTopK::new(4, 4096, 2, 3);
        for _ in 0..100 {
            t.record(1);
        }
        for _ in 0..50 {
            t.record(2);
        }
        let top = t.top_k();
        assert_eq!(top, vec![(1, 100), (2, 50)]);
    }
}
