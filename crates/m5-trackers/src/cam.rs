//! The sorted top-K Content-Addressable Memory.
//!
//! `K` entries, each a `(address, count)` pair kept sorted by count
//! (Figure 5, step 4–6): on a tag hit the entry's count is refreshed from
//! the CM-Sketch estimate; on a miss the candidate replaces the minimum
//! entry if its estimate is larger. The host queries the whole unit in one
//! MMIO burst.

/// One CAM entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CamEntry {
    /// The tracked address (the tag).
    pub addr: u64,
    /// The (estimated) access count (the value).
    pub count: u64,
}

/// A sorted, K-entry CAM tracking the hottest addresses seen so far.
///
/// Entries are kept sorted descending by count, so `entries()[0]` is the
/// hottest and the last entry is the replacement candidate.
#[derive(Clone, Debug)]
pub struct SortedCam {
    k: usize,
    entries: Vec<CamEntry>,
}

impl SortedCam {
    /// Builds an empty CAM with `k` entries.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> SortedCam {
        assert!(k > 0, "CAM needs at least one entry");
        SortedCam {
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// The capacity `K`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the CAM is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The minimum tracked count (`0` while not full — any candidate is
    /// admitted until all `K` entries are live).
    pub fn min_count(&self) -> u64 {
        if self.entries.len() < self.k {
            0
        } else {
            self.entries.last().map_or(0, |e| e.count)
        }
    }

    /// Offers `(addr, count)` to the CAM: refresh on hit, replace-min on
    /// miss if `count` beats the minimum. Returns `true` if the CAM now
    /// tracks `addr`.
    #[inline]
    pub fn offer(&mut self, addr: u64, count: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|e| e.addr == addr) {
            self.entries[pos].count = self.entries[pos].count.max(count);
            self.resift(pos);
            return true;
        }
        if self.entries.len() < self.k {
            self.entries.push(CamEntry { addr, count });
            self.resift(self.entries.len() - 1);
            return true;
        }
        let last = self.entries.len() - 1;
        if count > self.entries[last].count {
            self.entries[last] = CamEntry { addr, count };
            self.resift(last);
            return true;
        }
        false
    }

    /// Offers a batch of `(addr, count)` pairs in order, returning how many
    /// actually changed the CAM.
    ///
    /// Identical final state to looping [`SortedCam::offer`] with the
    /// caller-side `count > min_count()` fast-reject: the minimum only
    /// changes when an offer is actually applied, so it is cached across
    /// the rejected pairs instead of being recomputed per pair. An offer
    /// with `count <= min_count()` is a provable no-op (see
    /// `CmSketchTopK::record` for the argument), so skipping its tag scan
    /// cannot change the outcome.
    pub fn offer_batch<I>(&mut self, pairs: I) -> usize
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut applied = 0;
        let mut min = self.min_count();
        for (addr, count) in pairs {
            if count > min {
                if self.offer(addr, count) {
                    applied += 1;
                }
                min = self.min_count();
            }
        }
        applied
    }

    /// Restores descending order after `pos`'s count grew.
    fn resift(&mut self, mut pos: usize) {
        while pos > 0 && self.entries[pos - 1].count < self.entries[pos].count {
            self.entries.swap(pos - 1, pos);
            pos -= 1;
        }
    }

    /// The tracked entries, hottest first.
    pub fn entries(&self) -> &[CamEntry] {
        &self.entries
    }

    /// Clears the CAM (after a top-K query, §5.1).
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// Restores previously exported entries (hottest first). Returns
    /// `false` (and leaves the CAM untouched) when `entries` exceeds the
    /// capacity `K` or is not sorted descending by count — loading an
    /// unsorted CAM would silently break the replace-min invariant.
    pub fn load_entries(&mut self, entries: &[CamEntry]) -> bool {
        if entries.len() > self.k || entries.windows(2).any(|w| w[0].count < w[1].count) {
            return false;
        }
        self.entries.clear();
        self.entries.extend_from_slice(entries);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_replaces_minimum() {
        let mut cam = SortedCam::new(3);
        assert!(cam.offer(1, 10));
        assert!(cam.offer(2, 20));
        assert!(cam.offer(3, 5));
        assert_eq!(cam.len(), 3);
        assert_eq!(cam.min_count(), 5);
        // 4 with count 6 replaces 3 (count 5).
        assert!(cam.offer(4, 6));
        assert!(!cam.entries().iter().any(|e| e.addr == 3));
        // 5 with count 6 does NOT replace (must be strictly larger).
        assert!(!cam.offer(5, 6));
        assert_eq!(cam.min_count(), 6);
    }

    #[test]
    fn hit_refreshes_and_resorts() {
        let mut cam = SortedCam::new(3);
        cam.offer(1, 10);
        cam.offer(2, 20);
        cam.offer(1, 50);
        let e = cam.entries();
        assert_eq!(e[0], CamEntry { addr: 1, count: 50 });
        assert_eq!(e[1], CamEntry { addr: 2, count: 20 });
    }

    #[test]
    fn stays_sorted_descending_always() {
        let mut cam = SortedCam::new(5);
        for (i, c) in [
            (10, 3),
            (11, 9),
            (12, 1),
            (13, 7),
            (14, 5),
            (15, 8),
            (10, 12),
        ] {
            cam.offer(i, c);
            let counts: Vec<u64> = cam.entries().iter().map(|e| e.count).collect();
            let mut sorted = counts.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(counts, sorted);
        }
    }

    #[test]
    fn min_count_is_zero_until_full() {
        let mut cam = SortedCam::new(2);
        assert_eq!(cam.min_count(), 0);
        cam.offer(1, 100);
        assert_eq!(cam.min_count(), 0, "still a free slot");
        cam.offer(2, 200);
        assert_eq!(cam.min_count(), 100);
    }

    #[test]
    fn reset_empties() {
        let mut cam = SortedCam::new(2);
        cam.offer(1, 1);
        cam.reset();
        assert!(cam.is_empty());
        assert_eq!(cam.capacity(), 2);
    }

    #[test]
    fn hit_never_lowers_a_count() {
        let mut cam = SortedCam::new(2);
        cam.offer(1, 10);
        cam.offer(1, 4);
        assert_eq!(cam.entries()[0].count, 10);
    }
}
