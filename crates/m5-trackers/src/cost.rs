//! Hardware cost model for the top-K trackers (paper Table 4 and the
//! 400 MHz timing constraint of §5.1/§7.1).
//!
//! We cannot run Quartus or an ASAP7 flow here, so this module provides (a)
//! the paper's published 7 nm synthesis numbers verbatim, and (b) an
//! analytic model fitted to them, used when the harness needs costs for an
//! `N` the table does not list. The structural story the model encodes:
//!
//! * a Space-Saving tracker is an `N`-entry CAM searched in parallel every
//!   cycle — area/power grow like `N·log₂N` and timing collapses quickly,
//! * a CM-Sketch tracker stores its `N` counters in SRAM (linear in `N`
//!   plus a fixed K-entry CAM), and pipelines bank accesses — it scales to
//!   128K entries at 400 MHz even on the FPGA.

use serde::{Deserialize, Serialize};

/// Tracker algorithm family, for cost/timing lookups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrackerKind {
    /// Space-Saving: `N`-entry CAM.
    SpaceSaving,
    /// CM-Sketch: `N` SRAM counters + K-entry CAM.
    CmSketch,
}

/// Implementation technology, for the timing constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technology {
    /// Intel Agilex-7 FPGA (the paper's prototype platform).
    Fpga,
    /// 7 nm ASIC (ASAP7-class predictive PDK).
    Asic7nm,
}

/// One published Table 4 row.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Number of entries `N`.
    pub n: usize,
    /// Space-Saving (CAM) area in µm², if synthesizable at this `N`.
    pub ss_area_um2: Option<f64>,
    /// CM-Sketch (SRAM) area in µm².
    pub cm_area_um2: f64,
    /// Space-Saving power in mW, if synthesizable.
    pub ss_power_mw: Option<f64>,
    /// CM-Sketch power in mW.
    pub cm_power_mw: f64,
}

/// The paper's Table 4, verbatim (top-5 trackers, H = 4, 7 nm logic).
pub const TABLE4_PUBLISHED: [Table4Row; 8] = [
    Table4Row {
        n: 50,
        ss_area_um2: Some(3_649.0),
        cm_area_um2: 1_899.0,
        ss_power_mw: Some(0.7),
        cm_power_mw: 2.0,
    },
    Table4Row {
        n: 100,
        ss_area_um2: Some(7_323.0),
        cm_area_um2: 2_134.0,
        ss_power_mw: Some(1.3),
        cm_power_mw: 2.2,
    },
    Table4Row {
        n: 512,
        ss_area_um2: Some(36_374.0),
        cm_area_um2: 2_878.0,
        ss_power_mw: Some(6.4),
        cm_power_mw: 2.7,
    },
    Table4Row {
        n: 1_024,
        ss_area_um2: Some(89_369.0),
        cm_area_um2: 3_714.0,
        ss_power_mw: Some(15.0),
        cm_power_mw: 3.2,
    },
    Table4Row {
        n: 2_048,
        ss_area_um2: Some(179_625.0),
        cm_area_um2: 5_346.0,
        ss_power_mw: Some(29.9),
        cm_power_mw: 3.9,
    },
    Table4Row {
        n: 8_192,
        ss_area_um2: None,
        cm_area_um2: 13_509.0,
        ss_power_mw: None,
        cm_power_mw: 7.9,
    },
    Table4Row {
        n: 32_768,
        ss_area_um2: None,
        cm_area_um2: 46_930.0,
        ss_power_mw: None,
        cm_power_mw: 23.2,
    },
    Table4Row {
        n: 131_072,
        ss_area_um2: None,
        cm_area_um2: 180_530.0,
        ss_power_mw: None,
        cm_power_mw: 83.8,
    },
];

/// Analytic area/power model fitted to [`TABLE4_PUBLISHED`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed CAM overhead (µm²).
    pub cam_area_fixed: f64,
    /// CAM area slope per `n·log₂n` (µm²).
    pub cam_area_nlogn: f64,
    /// Fixed CAM power (mW).
    pub cam_power_fixed: f64,
    /// CAM power slope per `n·log₂n` (mW).
    pub cam_power_nlogn: f64,
    /// Fixed SRAM-tracker overhead — the K-entry CAM and control (µm²).
    pub sram_area_fixed: f64,
    /// SRAM area per counter (µm²).
    pub sram_area_per_entry: f64,
    /// Fixed SRAM-tracker power (mW).
    pub sram_power_fixed: f64,
    /// SRAM power per counter (mW).
    pub sram_power_per_entry: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        // Two-point fits through the published extremes; mid-table rows land
        // within ~15 % (asserted in tests).
        CostModel {
            cam_area_fixed: 1_418.0,
            cam_area_nlogn: 7.91,
            cam_power_fixed: 0.33,
            cam_power_nlogn: 0.001_313,
            sram_area_fixed: 1_831.0,
            sram_area_per_entry: 1.363,
            sram_power_fixed: 1.97,
            sram_power_per_entry: 0.000_624,
        }
    }
}

fn nlog2n(n: usize) -> f64 {
    let n = n as f64;
    n * n.log2()
}

impl CostModel {
    /// Estimated area in µm² of a tracker with `n` entries.
    pub fn area_um2(&self, kind: TrackerKind, n: usize) -> f64 {
        match kind {
            TrackerKind::SpaceSaving => self.cam_area_fixed + self.cam_area_nlogn * nlog2n(n),
            TrackerKind::CmSketch => self.sram_area_fixed + self.sram_area_per_entry * n as f64,
        }
    }

    /// Estimated power in mW of a tracker with `n` entries.
    pub fn power_mw(&self, kind: TrackerKind, n: usize) -> f64 {
        match kind {
            TrackerKind::SpaceSaving => self.cam_power_fixed + self.cam_power_nlogn * nlog2n(n),
            TrackerKind::CmSketch => self.sram_power_fixed + self.sram_power_per_entry * n as f64,
        }
    }

    /// The largest `N` that meets the 400 MHz timing constraint (tCCD of
    /// DDR4-3200), per the paper's synthesis results: FPGA caps
    /// Space-Saving at 50 CAM entries and CM-Sketch at 128K SRAM entries;
    /// the 7 nm ASIC extends Space-Saving to 2K.
    pub fn max_entries_at_400mhz(kind: TrackerKind, tech: Technology) -> usize {
        match (kind, tech) {
            (TrackerKind::SpaceSaving, Technology::Fpga) => 50,
            (TrackerKind::SpaceSaving, Technology::Asic7nm) => 2_048,
            (TrackerKind::CmSketch, Technology::Fpga) => 131_072,
            (TrackerKind::CmSketch, Technology::Asic7nm) => 131_072,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_published_table_within_tolerance() {
        let m = CostModel::default();
        for row in TABLE4_PUBLISHED {
            let cm_area = m.area_um2(TrackerKind::CmSketch, row.n);
            assert!(
                (cm_area - row.cm_area_um2).abs() / row.cm_area_um2 < 0.15,
                "CM area off at N={}: model {cm_area:.0} vs {}",
                row.n,
                row.cm_area_um2
            );
            let cm_pow = m.power_mw(TrackerKind::CmSketch, row.n);
            assert!(
                (cm_pow - row.cm_power_mw).abs() / row.cm_power_mw < 0.20,
                "CM power off at N={}: model {cm_pow:.2} vs {}",
                row.n,
                row.cm_power_mw
            );
            if let (Some(area), Some(pow)) = (row.ss_area_um2, row.ss_power_mw) {
                let ss_area = m.area_um2(TrackerKind::SpaceSaving, row.n);
                assert!(
                    (ss_area - area).abs() / area < 0.15,
                    "SS area off at N={}: model {ss_area:.0} vs {area}",
                    row.n
                );
                let ss_pow = m.power_mw(TrackerKind::SpaceSaving, row.n);
                assert!(
                    (ss_pow - pow).abs() / pow < 0.20,
                    "SS power off at N={}: model {ss_pow:.2} vs {pow}",
                    row.n
                );
            }
        }
    }

    #[test]
    fn headline_ratio_at_2k_entries() {
        // §7.1: at N = 2K, Space-Saving costs 33.6× the area and 7.6× the
        // power of CM-Sketch (published numbers).
        let row = TABLE4_PUBLISHED.iter().find(|r| r.n == 2048).unwrap();
        let area_ratio = row.ss_area_um2.unwrap() / row.cm_area_um2;
        let power_ratio = row.ss_power_mw.unwrap() / row.cm_power_mw;
        assert!(
            (area_ratio - 33.6).abs() < 0.1,
            "area ratio {area_ratio:.1}"
        );
        assert!(
            (power_ratio - 7.6).abs() < 0.1,
            "power ratio {power_ratio:.1}"
        );
    }

    #[test]
    fn timing_limits_match_the_paper() {
        use Technology::*;
        use TrackerKind::*;
        assert_eq!(CostModel::max_entries_at_400mhz(SpaceSaving, Fpga), 50);
        assert_eq!(CostModel::max_entries_at_400mhz(SpaceSaving, Asic7nm), 2048);
        assert_eq!(CostModel::max_entries_at_400mhz(CmSketch, Fpga), 131_072);
    }

    #[test]
    fn cam_grows_much_faster_than_sram() {
        let m = CostModel::default();
        let ratio_small =
            m.area_um2(TrackerKind::SpaceSaving, 50) / m.area_um2(TrackerKind::CmSketch, 50);
        let ratio_large =
            m.area_um2(TrackerKind::SpaceSaving, 2048) / m.area_um2(TrackerKind::CmSketch, 2048);
        assert!(ratio_large > ratio_small * 5.0);
    }
}
