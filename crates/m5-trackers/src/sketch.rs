//! The Count-Min sketch (CM-Sketch) unit.
//!
//! An `H × W` SRAM array of counters. For each address, every row increments
//! the counter selected by its hash function, and a comparator tree takes
//! the minimum of the incremented counters as the estimated access count
//! (Figure 5, steps 1–3). The estimate never under-counts; hash collisions
//! only inflate it — the property the paper leans on when arguing that
//! small `N = H × W` hurts precision (§7.1).

use crate::hash::HashFamily;

/// An `H`-row, `W`-column Count-Min sketch with 32-bit counters.
#[derive(Clone, Debug)]
pub struct CmSketch {
    hashes: HashFamily,
    rows: usize,
    width: usize,
    counters: Vec<u32>,
    updates: u64,
    /// Batched-update bucket scratch (one lane at a time); transient, not
    /// part of the exported state.
    bucket_scratch: Vec<u32>,
}

impl CmSketch {
    /// Builds a sketch with `rows × width` counters.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `width` is zero.
    pub fn new(rows: usize, width: usize, seed: u64) -> CmSketch {
        assert!(rows > 0 && width > 0, "sketch must have counters");
        CmSketch {
            hashes: HashFamily::new(rows, seed),
            rows,
            width,
            counters: vec![0; rows * width],
            updates: 0,
            bucket_scratch: Vec::new(),
        }
    }

    /// Builds a sketch with `n` total counters spread over `rows` rows
    /// (the paper parameterises by `N = H × W`).
    ///
    /// # Panics
    ///
    /// Panics if `n < rows` or `rows == 0`.
    pub fn with_total_entries(rows: usize, n: usize, seed: u64) -> CmSketch {
        assert!(rows > 0 && n >= rows, "need at least one counter per row");
        CmSketch::new(rows, n / rows, seed)
    }

    /// Number of rows (`H`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Counters per row (`W`).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total counters (`N = H × W`).
    pub fn total_entries(&self) -> usize {
        self.rows * self.width
    }

    /// Number of updates recorded since the last reset.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Records one access to `key` and returns the new estimate — the
    /// minimum of the `H` incremented counters, exactly as the hardware's
    /// comparator tree produces it.
    #[inline]
    pub fn update(&mut self, key: u64) -> u64 {
        self.updates += 1;
        let mut min = u32::MAX;
        for r in 0..self.rows {
            let idx = r * self.width + self.hashes.bucket(r, key, self.width);
            let c = self.counters[idx].saturating_add(1);
            self.counters[idx] = c;
            min = min.min(c);
        }
        min as u64
    }

    /// Records one access to each key in `keys`, writing the per-key
    /// estimates (post-increment minimum over the `H` rows) into `out_est`
    /// (cleared and resized to `keys.len()`).
    ///
    /// Byte-identical to calling [`CmSketch::update`] per key, in order:
    /// rows are independent (row `r` only ever touches row `r`'s counters),
    /// so processing row-major — all of row 0's increments in key order,
    /// then row 1's, … — applies exactly the same saturating increments to
    /// exactly the same cells, including for duplicate keys within the
    /// batch, and each key's recorded per-row value is the same
    /// post-increment counter the interleaved order would have seen. Each
    /// row runs as two passes: a pure-arithmetic hash lane into
    /// [`HashFamily::bucket_row`]'s scratch (vectorizes), then a tight
    /// gather/increment sweep over that row's counter slice.
    pub fn update_batch(&mut self, keys: &[u64], out_est: &mut Vec<u32>) {
        out_est.clear();
        out_est.resize(keys.len(), u32::MAX);
        self.updates += keys.len() as u64;
        for r in 0..self.rows {
            self.hashes
                .bucket_row(r, keys, self.width, &mut self.bucket_scratch);
            let row = &mut self.counters[r * self.width..(r + 1) * self.width];
            for (est, &b) in out_est.iter_mut().zip(self.bucket_scratch.iter()) {
                let c = row[b as usize].saturating_add(1);
                row[b as usize] = c;
                *est = (*est).min(c);
            }
        }
        // Scratch is dead between calls; clearing (capacity kept) makes a
        // batched sketch's state canonical — identical to a looped one.
        self.bucket_scratch.clear();
    }

    /// The current estimate for `key` without updating.
    pub fn estimate(&self, key: u64) -> u64 {
        let mut min = u32::MAX;
        for r in 0..self.rows {
            let idx = r * self.width + self.hashes.bucket(r, key, self.width);
            min = min.min(self.counters[idx]);
        }
        min as u64
    }

    /// Clears every counter (done after each top-K query epoch, §5.1).
    pub fn reset(&mut self) {
        self.counters.fill(0);
        self.updates = 0;
    }

    /// The raw counter array, row-major (`rows × width`), for state export.
    pub fn counters(&self) -> &[u32] {
        &self.counters
    }

    /// Restores previously exported counters and the update count. The
    /// hash family is deterministic from the construction seed, so a
    /// rebuilt-then-loaded sketch behaves identically to the exported one.
    /// Returns `false` (and leaves the sketch untouched) when the counter
    /// vector does not match this sketch's geometry.
    pub fn load_state(&mut self, counters: &[u32], updates: u64) -> bool {
        if counters.len() != self.counters.len() {
            return false;
        }
        self.counters.copy_from_slice(counters);
        self.updates = updates;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn update_returns_running_estimate() {
        let mut s = CmSketch::new(4, 64, 1);
        for i in 1..=10 {
            assert!(s.update(42) >= i);
        }
        assert!(s.estimate(42) >= 10);
        assert_eq!(s.updates(), 10);
    }

    #[test]
    fn never_underestimates() {
        let mut s = CmSketch::new(4, 32, 7);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        // Adversarially small sketch with 1000 keys: collisions guaranteed.
        for i in 0..10_000u64 {
            let key = i % 1000;
            s.update(key);
            *truth.entry(key).or_default() += 1;
        }
        for (&key, &count) in &truth {
            assert!(
                s.estimate(key) >= count,
                "key {key}: est {} < true {count}",
                s.estimate(key)
            );
        }
    }

    #[test]
    fn wide_sketch_is_nearly_exact_for_few_keys() {
        let mut s = CmSketch::new(4, 4096, 3);
        for _ in 0..500 {
            s.update(1);
        }
        for _ in 0..100 {
            s.update(2);
        }
        assert_eq!(s.estimate(1), 500);
        assert_eq!(s.estimate(2), 100);
        assert_eq!(s.estimate(3), 0);
    }

    #[test]
    fn with_total_entries_splits_evenly() {
        let s = CmSketch::with_total_entries(4, 32 * 1024, 0);
        assert_eq!(s.rows(), 4);
        assert_eq!(s.width(), 8192);
        assert_eq!(s.total_entries(), 32768);
    }

    #[test]
    fn reset_clears_state() {
        let mut s = CmSketch::new(2, 16, 9);
        s.update(5);
        s.reset();
        assert_eq!(s.estimate(5), 0);
        assert_eq!(s.updates(), 0);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut s = CmSketch::new(1, 1, 0);
        s.counters[0] = u32::MAX - 1;
        assert_eq!(s.update(0), u32::MAX as u64);
        assert_eq!(s.update(0), u32::MAX as u64, "saturated, no wrap");
    }

    #[test]
    #[should_panic(expected = "counters")]
    fn zero_geometry_panics() {
        let _ = CmSketch::new(0, 8, 0);
    }
}
