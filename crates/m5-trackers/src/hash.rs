//! A small family of fast, deterministic 64-bit hash functions.
//!
//! The CM-Sketch hardware applies `H` independent hash functions to each
//! address in parallel (Figure 5, step 1). We model them with finalizer-style
//! mixers parameterised by per-row seeds, which are cheap (a handful of
//! multiplies and shifts, matching what fits in an FPGA pipeline stage) and
//! have good avalanche behaviour.

/// A family of `H` independent hash functions derived from one master seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HashFamily {
    seeds: Vec<u64>,
}

/// The 64-bit finalizer from SplitMix64 — a full-avalanche mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl HashFamily {
    /// Derives `h` independent functions from `master_seed`.
    pub fn new(h: usize, master_seed: u64) -> HashFamily {
        let seeds = (0..h as u64)
            .map(|i| mix64(master_seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect();
        HashFamily { seeds }
    }

    /// Number of functions in the family.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Hashes `key` with function `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.len()`.
    #[inline]
    pub fn hash(&self, row: usize, key: u64) -> u64 {
        mix64(key ^ self.seeds[row])
    }

    /// Hashes `key` with function `row` into the range `0..bound`.
    #[inline]
    pub fn bucket(&self, row: usize, key: u64, bound: usize) -> usize {
        // Multiply-high range reduction: unbiased enough and division-free.
        ((self.hash(row, key) as u128 * bound as u128) >> 64) as usize
    }

    /// Hashes every key in `keys` with function `row` into `0..bound`,
    /// appending the buckets to `out` (cleared first).
    ///
    /// This is one hash lane of a batched sketch update: the loop body is
    /// pure arithmetic on a single seed (no table lookups, no branches), so
    /// it vectorizes, and the produced bucket array lets the caller touch
    /// the counter SRAM row-major afterwards. Buckets fit in `u32` because
    /// `bound` is a counter-row width.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.len()`.
    #[inline]
    pub fn bucket_row(&self, row: usize, keys: &[u64], bound: usize, out: &mut Vec<u32>) {
        let seed = self.seeds[row];
        out.clear();
        out.extend(
            keys.iter()
                .map(|&key| ((mix64(key ^ seed) as u128 * bound as u128) >> 64) as u32),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_independent() {
        let f = HashFamily::new(4, 1);
        let key = 0xdead_beef;
        let hs: Vec<u64> = (0..4).map(|r| f.hash(r, key)).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(hs[i], hs[j], "rows {i} and {j} collide");
            }
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = HashFamily::new(2, 99);
        let b = HashFamily::new(2, 99);
        assert_eq!(a.hash(1, 42), b.hash(1, 42));
        assert_eq!(a, b);
    }

    #[test]
    fn buckets_stay_in_bounds_and_spread() {
        let f = HashFamily::new(1, 7);
        let bound = 37;
        let mut seen = vec![0u32; bound];
        for k in 0..10_000u64 {
            let b = f.bucket(0, k, bound);
            assert!(b < bound);
            seen[b] += 1;
        }
        // Roughly uniform: each bucket within 3x of the mean.
        let mean = 10_000 / bound as u32;
        for (i, &c) in seen.iter().enumerate() {
            assert!(c > mean / 3 && c < mean * 3, "bucket {i} has {c}");
        }
    }

    #[test]
    fn mix64_has_no_trivial_fixed_point_at_small_inputs() {
        for x in 1..100u64 {
            assert_ne!(mix64(x), x);
        }
    }
}
