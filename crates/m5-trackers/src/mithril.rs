//! A Mithril-style grouped Space-Saving tracker (§5.1 cites Mithril, the
//! Row-Hammer defence, as the Space-Saving variant it compares against).
//!
//! Hardware Space-Saving needs to find the global minimum counter every
//! miss — the all-entries CAM comparison that caps `N` at ~50 on the FPGA
//! (Table 4). Mithril-class designs restore scalability by *grouping*:
//! counters are split into hash-indexed groups and the min search runs
//! only within the group the address maps to. The trade-off is accuracy —
//! the per-group error bound is `group_total / group_size`, worse than
//! the global `total / N` when the hash skews — exactly the kind of
//! design-space point the paper's Figure 7 sweep explores.

use crate::hash::HashFamily;
use crate::spacesaving::SsEntry;
use crate::topk::TopKAlgorithm;

/// Space-Saving with group-local minimum search.
#[derive(Clone, Debug)]
pub struct GroupedSpaceSaving {
    /// Flat storage: `groups × group_size` entries.
    entries: Vec<Option<SsEntry>>,
    group_size: usize,
    hash: HashFamily,
    total: u64,
    /// Batched-update group-index scratch; transient, not exported state.
    group_scratch: Vec<u32>,
}

impl GroupedSpaceSaving {
    /// Builds a tracker with `groups` groups of `group_size` counters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(groups: usize, group_size: usize, seed: u64) -> GroupedSpaceSaving {
        assert!(groups > 0 && group_size > 0, "need counters");
        GroupedSpaceSaving {
            entries: vec![None; groups * group_size],
            group_size,
            hash: HashFamily::new(1, seed),
            total: 0,
            group_scratch: Vec::new(),
        }
    }

    /// Total counters (`N = groups × group_size`).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Total updates since the last reset.
    pub fn total(&self) -> u64 {
        self.total
    }

    fn group_range(&self, addr: u64) -> std::ops::Range<usize> {
        let groups = self.entries.len() / self.group_size;
        let g = self.hash.bucket(0, addr, groups);
        g * self.group_size..(g + 1) * self.group_size
    }

    /// Records one access to `addr`.
    #[inline]
    pub fn update(&mut self, addr: u64) {
        self.total += 1;
        let range = self.group_range(addr);
        let group = &mut self.entries[range];
        // Tag hit?
        if let Some(e) = group.iter_mut().flatten().find(|e| e.addr == addr) {
            e.count += 1;
            return;
        }
        // Free slot?
        if let Some(slot) = group.iter_mut().find(|s| s.is_none()) {
            *slot = Some(SsEntry {
                addr,
                count: 1,
                error: 0,
            });
            return;
        }
        // Group-local min replacement.
        let victim = group
            .iter_mut()
            .flatten()
            .min_by_key(|e| e.count)
            .expect("group is full");
        *victim = SsEntry {
            addr,
            count: victim.count + 1,
            error: victim.count,
        };
    }

    /// Records a batch of accesses in order, hoisting the group-hash lane
    /// out of the state-dependent update loop.
    ///
    /// The per-entry mutation is applied strictly in `addrs` order (each
    /// update reads the state left by the previous one — Space-Saving is
    /// inherently sequential), so the result is byte-identical to looping
    /// [`GroupedSpaceSaving::update`]; only the pure group-index hashing
    /// is restructured into a vectorizable pre-pass.
    pub fn update_batch(&mut self, addrs: &[u64]) {
        let groups = self.entries.len() / self.group_size;
        self.hash
            .bucket_row(0, addrs, groups, &mut self.group_scratch);
        self.total += addrs.len() as u64;
        for (i, &addr) in addrs.iter().enumerate() {
            let g = self.group_scratch[i] as usize;
            let group = &mut self.entries[g * self.group_size..(g + 1) * self.group_size];
            if let Some(e) = group.iter_mut().flatten().find(|e| e.addr == addr) {
                e.count += 1;
                continue;
            }
            if let Some(slot) = group.iter_mut().find(|s| s.is_none()) {
                *slot = Some(SsEntry {
                    addr,
                    count: 1,
                    error: 0,
                });
                continue;
            }
            let victim = group
                .iter_mut()
                .flatten()
                .min_by_key(|e| e.count)
                .expect("group is full");
            *victim = SsEntry {
                addr,
                count: victim.count + 1,
                error: victim.count,
            };
        }
        // Scratch is dead between calls; clearing (capacity kept) keeps a
        // batched tracker's state canonical — identical to a looped one.
        self.group_scratch.clear();
    }

    /// Estimated count for `addr` (`0` if unmonitored).
    pub fn estimate(&self, addr: u64) -> u64 {
        let range = self.group_range(addr);
        self.entries[range]
            .iter()
            .flatten()
            .find(|e| e.addr == addr)
            .map_or(0, |e| e.count)
    }

    /// All monitored entries, hottest first.
    pub fn entries_sorted(&self) -> Vec<SsEntry> {
        let mut v: Vec<SsEntry> = self.entries.iter().flatten().copied().collect();
        v.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.addr.cmp(&b.addr)));
        v
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.entries.fill(None);
        self.total = 0;
    }
}

/// [`GroupedSpaceSaving`] adapted to the unified top-K interface.
#[derive(Clone, Debug)]
pub struct MithrilTopK {
    inner: GroupedSpaceSaving,
    k: usize,
}

impl MithrilTopK {
    /// Builds a tracker with `n` total counters in groups of `group_size`,
    /// reporting `k` results.
    pub fn new(n: usize, group_size: usize, k: usize, seed: u64) -> MithrilTopK {
        let group_size = group_size.min(n).max(1);
        MithrilTopK {
            inner: GroupedSpaceSaving::new(n.div_ceil(group_size), group_size, seed),
            k,
        }
    }
}

impl TopKAlgorithm for MithrilTopK {
    fn record(&mut self, addr: u64) {
        self.inner.update(addr);
    }

    fn record_batch(&mut self, addrs: &[u64]) {
        self.inner.update_batch(addrs);
    }

    fn top_k(&self) -> Vec<(u64, u64)> {
        self.inner
            .entries_sorted()
            .into_iter()
            .take(self.k)
            .map(|e| (e.addr, e.count))
            .collect()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn entries(&self) -> usize {
        self.inner.capacity()
    }

    fn name(&self) -> &'static str {
        "mithril"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_under_group_capacity() {
        let mut t = GroupedSpaceSaving::new(4, 4, 1);
        for _ in 0..9 {
            t.update(7);
        }
        for _ in 0..4 {
            t.update(8);
        }
        assert_eq!(t.estimate(7), 9);
        assert_eq!(t.estimate(8), 4);
        assert_eq!(t.total(), 13);
    }

    #[test]
    fn never_underestimates() {
        let mut t = GroupedSpaceSaving::new(2, 4, 3);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x: u64 = 99;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (x >> 48) % 64;
            t.update(key);
            *truth.entry(key).or_default() += 1;
        }
        for e in t.entries_sorted() {
            let true_count = truth[&e.addr];
            assert!(
                e.count >= true_count,
                "{}: {} < {}",
                e.addr,
                e.count,
                true_count
            );
            assert!(e.count - true_count <= e.error);
        }
    }

    #[test]
    fn finds_a_dominant_heavy_hitter() {
        let mut t = MithrilTopK::new(32, 8, 3, 5);
        let mut x: u64 = 5;
        for i in 0..30_000u64 {
            if i % 3 != 0 {
                t.record(0xAAAA); // dominant
            } else {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(1);
                t.record((x >> 50) % 500);
            }
        }
        assert_eq!(t.top_k()[0].0, 0xAAAA, "{:?}", t.top_k());
        assert_eq!(t.name(), "mithril");
        assert_eq!(t.entries(), 32);
    }

    #[test]
    fn grouping_trades_accuracy_for_scalability() {
        // With a single group the structure IS Space-Saving; with many
        // tiny groups the per-group error bound is looser. Both keep the
        // overestimate property; the grouped one evicts more.
        let stream: Vec<u64> = (0..10_000u64).map(|i| (i * i) % 200).collect();
        let run = |groups: usize, size: usize| {
            let mut t = GroupedSpaceSaving::new(groups, size, 7);
            for &a in &stream {
                t.update(a);
            }
            t.entries_sorted()
                .iter()
                .map(|e| e.error)
                .max()
                .unwrap_or(0)
        };
        let grouped_err = run(16, 2);
        let flat_err = run(1, 32);
        assert!(
            grouped_err >= flat_err,
            "grouped {grouped_err} < flat {flat_err}"
        );
    }

    #[test]
    fn reset_clears() {
        let mut t = MithrilTopK::new(8, 4, 2, 0);
        t.record(1);
        t.reset();
        assert!(t.top_k().is_empty());
    }
}
