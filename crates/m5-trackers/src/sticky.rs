//! Sticky Sampling (Manku & Motwani, 2002) — the sampling-based
//! representative in the paper's taxonomy of streaming algorithms (§5.1).
//!
//! Elements are admitted to the monitored set with a probability `1/r` that
//! halves each window (so the sampling rate adapts to stream length); at
//! each window boundary every monitored count is diminished by a geometric
//! coin flip, evicting entries that reach zero. Monitored counts
//! *under*-estimate (by at most the admission delay), unlike Space-Saving
//! and CM-Sketch which over-estimate — a property the tests pin down.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A Sticky-Sampling frequency tracker.
#[derive(Clone, Debug)]
pub struct StickySampling {
    counts: HashMap<u64, u64>,
    rng: SmallRng,
    /// Current sampling rate divisor (admit with probability `1/rate`).
    rate: u64,
    /// Updates remaining in the current window.
    window_left: u64,
    /// Base window length (`2t` in the original paper's terms).
    window_base: u64,
}

impl StickySampling {
    /// Builds a tracker whose first adaptation window is `window` updates
    /// long (all elements are admitted during it).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: u64, seed: u64) -> StickySampling {
        assert!(window > 0, "window must be positive");
        StickySampling {
            counts: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed),
            rate: 1,
            window_left: window,
            window_base: window,
        }
    }

    /// Number of monitored addresses.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether nothing is monitored.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The current sampling-rate divisor.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Records one access to `addr`.
    #[inline]
    pub fn update(&mut self, addr: u64) {
        if self.window_left == 0 {
            self.advance_window();
        }
        self.window_left -= 1;

        if let Some(c) = self.counts.get_mut(&addr) {
            *c += 1;
            return;
        }
        if self.rate == 1 || self.rng.gen_range(0..self.rate) == 0 {
            self.counts.insert(addr, 1);
        }
    }

    /// Window boundary: double the rate and geometrically diminish counts.
    fn advance_window(&mut self) {
        self.rate *= 2;
        self.window_left = self.window_base * self.rate;
        let rng = &mut self.rng;
        self.counts.retain(|_, c| {
            // Toss an unbiased coin until heads; diminish by the number of
            // tails.
            while *c > 0 && rng.gen::<bool>() {
                *c -= 1;
            }
            *c > 0
        });
    }

    /// Estimated count for `addr` (an *under*-estimate; `0` if unmonitored).
    pub fn estimate(&self, addr: u64) -> u64 {
        self.counts.get(&addr).copied().unwrap_or(0)
    }

    /// The `k` hottest monitored addresses, hottest first.
    pub fn top_k(&self, k: usize) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counts.iter().map(|(&a, &c)| (a, c)).collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Clears all state (rate resets too).
    pub fn reset(&mut self) {
        self.counts.clear();
        self.rate = 1;
        self.window_left = self.window_base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_during_first_window() {
        let mut s = StickySampling::new(1000, 1);
        for _ in 0..10 {
            s.update(7);
        }
        for _ in 0..3 {
            s.update(8);
        }
        assert_eq!(s.estimate(7), 10);
        assert_eq!(s.estimate(8), 3);
        assert_eq!(s.rate(), 1);
    }

    #[test]
    fn never_overestimates() {
        let mut s = StickySampling::new(64, 42);
        let mut truth = HashMap::<u64, u64>::new();
        let mut x: u64 = 1;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (x >> 50) % 40;
            s.update(key);
            *truth.entry(key).or_default() += 1;
        }
        for (&k, &c) in s.counts.iter() {
            assert!(c <= truth[&k], "key {k}: est {c} > true {}", truth[&k]);
        }
    }

    #[test]
    fn rate_doubles_across_windows() {
        let mut s = StickySampling::new(10, 0);
        for i in 0..10 {
            s.update(i);
        }
        assert_eq!(s.rate(), 1);
        s.update(100); // crosses the boundary
        assert_eq!(s.rate(), 2);
        // Next window is base * rate long.
        for i in 0..19 {
            s.update(i);
        }
        assert_eq!(s.rate(), 2);
        s.update(101);
        assert_eq!(s.rate(), 4);
    }

    #[test]
    fn heavy_hitters_survive_windows() {
        let mut s = StickySampling::new(128, 3);
        for round in 0..2000u64 {
            s.update(1); // in every round: very hot
            s.update(10 + round % 500); // long tail
        }
        let top = s.top_k(1);
        assert_eq!(top[0].0, 1, "the persistent heavy hitter leads");
        assert!(top[0].1 > 1000);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut s = StickySampling::new(4, 9);
        for i in 0..20 {
            s.update(i);
        }
        s.reset();
        assert!(s.is_empty());
        assert_eq!(s.rate(), 1);
    }
}
