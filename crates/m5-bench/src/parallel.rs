//! Deterministic parallel execution of the bench-suite's embarrassingly
//! parallel work: crash-sweep points, golden workloads, and figure-bench
//! config grids.
//!
//! Every sweep point, golden run, and grid cell owns its *entire* world —
//! a fresh [`cxl_sim::system::System`], workload, and manager built from
//! an index-addressable spec — so points share no mutable state and can
//! run on any thread. The only ordering that matters is the order results
//! are *merged* in, and the vendored `rayon` guarantees collection in
//! input-index order regardless of OS scheduling. Together those two
//! properties make the parallel drivers **byte-identical** to their
//! sequential counterparts: same specs in, same artifact text out
//! (`tests/crash_sweep.rs` and `tests/golden.rs` assert exactly this).

use crate::crash_sweep::{
    baseline, run_with_reset, run_with_reset_from_seed, seed_checkpoint, SweepRun, SweepSpec,
};
use crate::golden::{render, run_golden, GoldenSpec};
use rayon::prelude::*;

/// Runs `f` over `items` on all available cores, returning results in
/// input order — the generic fan-out every driver below is built on.
/// With one core (or one item) this is exactly a sequential loop.
pub fn par_indexed<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    items.into_par_iter().map(f).collect()
}

/// The outcome of one workload's full crash sweep.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The fault-free baseline run (defines the sweep range).
    pub baseline: SweepRun,
    /// One run per reset point, ordered by `at_step` (`1..=baseline.steps`).
    pub points: Vec<SweepRun>,
}

/// Runs one workload's crash sweep with every reset point fanned across
/// the thread pool. Each point builds its own `System` from the spec, so
/// results depend only on `(spec, at_step)`; the merge is in step order.
pub fn crash_sweep_parallel(s: &SweepSpec) -> SweepOutcome {
    let base = baseline(s);
    let points = par_indexed((1..=base.steps).collect(), |at_step| {
        run_with_reset(s, at_step)
    });
    SweepOutcome {
        baseline: base,
        points,
    }
}

/// Runs one workload's crash sweep strictly sequentially — the reference
/// the determinism tests compare [`crash_sweep_parallel`] against.
pub fn crash_sweep_sequential(s: &SweepSpec) -> SweepOutcome {
    let base = baseline(s);
    let points = (1..=base.steps).map(|k| run_with_reset(s, k)).collect();
    SweepOutcome {
        baseline: base,
        points,
    }
}

/// Runs one workload's crash sweep seeded from a mid-run checkpoint:
/// points striking inside the snapshotted prefix (`1..=seed.steps`)
/// replay the whole workload as usual; points in the tail restore the
/// snapshot and run only the remainder, halving the sweep's total work
/// when the seed sits at the midpoint. Byte-identical outcomes to the
/// unseeded sweep are NOT guaranteed for prefix-overlapping bookkeeping
/// (the injector arms at restore time, not t=0), but the sweep contract —
/// reset fires, budget completes, invariants hold — is checked the same.
pub fn crash_sweep_seeded(s: &SweepSpec, seed_at_accesses: u64) -> SweepOutcome {
    let base = baseline(s);
    let seed = seed_checkpoint(s, seed_at_accesses);
    let points = par_indexed((1..=base.steps).collect(), |at_step| {
        if at_step > seed.steps {
            run_with_reset_from_seed(s, &seed, at_step)
        } else {
            run_with_reset(s, at_step)
        }
    });
    SweepOutcome {
        baseline: base,
        points,
    }
}

impl SweepOutcome {
    /// The canonical line-oriented artifact for this sweep: one line per
    /// point with every observable field, suitable for byte comparison
    /// between the parallel and sequential drivers.
    pub fn artifact(&self, name: &str) -> String {
        let mut out = format!(
            "# crash sweep '{}': baseline steps={} committed={} accesses={}\n",
            name, self.baseline.steps, self.baseline.committed, self.baseline.accesses
        );
        for r in &self.points {
            out.push_str(&format!(
                "step {} fired={} accesses={} steps={} committed={} recovery={} violations={}\n",
                r.at_step.unwrap_or(0),
                r.fired,
                r.accesses,
                r.steps,
                r.committed,
                r.final_recovery
                    .as_ref()
                    .map(|rec| format!("{rec:?}"))
                    .unwrap_or_else(|| "none".into()),
                r.violations.join("; "),
            ));
        }
        out
    }

    /// Indices (`at_step` values) of points that violate the sweep
    /// contract: the reset must fire, the access budget must complete,
    /// and no invariant may be violated at exit.
    pub fn failing_steps(&self, want_accesses: u64) -> Vec<u64> {
        self.points
            .iter()
            .filter(|r| !r.fired || r.accesses != want_accesses || !r.violations.is_empty())
            .map(|r| r.at_step.unwrap_or(0))
            .collect()
    }
}

/// Runs a set of golden workloads across the thread pool, returning each
/// one's rendered canonical snapshot text in input order. Each run owns a
/// fresh `System` + `Telemetry`, so the rendering is identical to calling
/// [`run_golden`] in a loop.
pub fn goldens_parallel(specs: &[GoldenSpec]) -> Vec<String> {
    par_indexed(specs.to_vec(), |g| {
        let (snap, _) = run_golden(&g, None);
        render(g.name, &snap)
    })
}

/// Sequential reference for [`goldens_parallel`].
pub fn goldens_sequential(specs: &[GoldenSpec]) -> Vec<String> {
    specs
        .iter()
        .map(|g| {
            let (snap, _) = run_golden(g, None);
            render(g.name, &snap)
        })
        .collect()
}

/// One cell of a figure-bench configuration grid: a named configuration
/// evaluated to a scalar (the shape `fig07`-style DSE sweeps produce).
#[derive(Clone, Debug, PartialEq)]
pub struct GridCell {
    /// Row label (e.g. benchmark name).
    pub row: String,
    /// Column label (e.g. tracker size).
    pub col: String,
    /// The measured value.
    pub value: f64,
}

/// Evaluates a full `rows × cols` configuration grid in parallel,
/// returning cells in row-major order. `eval` must be a pure function of
/// its `(row, col)` cell — every figure-bench config grid satisfies this
/// because each cell builds its own tracker/system from the labels.
pub fn grid_parallel<F>(rows: &[String], cols: &[String], eval: F) -> Vec<GridCell>
where
    F: Fn(&str, &str) -> f64 + Sync,
{
    let cells: Vec<(String, String)> = rows
        .iter()
        .flat_map(|r| cols.iter().map(move |c| (r.clone(), c.clone())))
        .collect();
    par_indexed(cells, |(row, col)| {
        let value = eval(&row, &col);
        GridCell { row, col, value }
    })
}

/// Sequential reference for [`grid_parallel`].
pub fn grid_sequential<F>(rows: &[String], cols: &[String], eval: F) -> Vec<GridCell>
where
    F: Fn(&str, &str) -> f64,
{
    rows.iter()
        .flat_map(|r| cols.iter().map(|c| (r.clone(), c.clone())))
        .map(|(row, col)| {
            let value = eval(&row, &col);
            GridCell { row, col, value }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_indexed_preserves_order() {
        let out = par_indexed((0..64u64).collect(), |i| i * 3);
        assert_eq!(out, (0..64u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn grid_matches_sequential_reference() {
        let rows: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let cols: Vec<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        let eval = |r: &str, c: &str| (r.len() * 7 + c.len() * 3) as f64;
        assert_eq!(
            grid_parallel(&rows, &cols, eval),
            grid_sequential(&rows, &cols, eval)
        );
    }
}
