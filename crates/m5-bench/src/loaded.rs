//! Loaded-latency sweep harness: throughput vs offered load, and the
//! migration-storm backpressure figure.
//!
//! The contention model (`cxl_sim::contention`) makes a node's latency a
//! function of the load offered to its link. This module sweeps that axis:
//! run the same workload against CXL links carrying increasing background
//! load and record the simulated throughput and the loaded latency the
//! Monitor would see. The resulting curve is flat up to the configured
//! knee, then bends — the classic loaded-latency shape silicon CXL
//! characterizations report.
//!
//! The second figure isolates the *shared-link budget*: a storm of page
//! migrations deposits copy traffic into the same token bucket demand
//! fills drain from, so demand latency during the storm rises above the
//! calm phase. With contention disabled both phases bill identical fixed
//! costs and the delta is exactly zero — which is also a regression test
//! that the opt-in layer stays opt-in.

use cxl_sim::prelude::*;
use m5_workloads::registry::Benchmark;

/// Backgrounds swept by the default figure: from idle through the default
/// knee (0.65) into saturation.
pub const SWEEP_BACKGROUNDS: [f64; 7] = [0.0, 0.3, 0.5, 0.65, 0.75, 0.85, 0.95];

/// A daemon that never migrates but rolls the bandwidth + contention
/// window at a fixed cadence — the Monitor's heartbeat without a manager,
/// so the loaded-latency curve tracks offered load even in a
/// migration-free sweep (`NoMigration` would never close a window).
#[derive(Clone, Copy, Debug)]
pub struct MonitorOnly {
    period: Nanos,
    wake: Option<Nanos>,
}

impl MonitorOnly {
    /// A monitor heartbeat with the given window width.
    pub fn new(period: Nanos) -> MonitorOnly {
        MonitorOnly { period, wake: None }
    }
}

impl MigrationDaemon for MonitorOnly {
    fn name(&self) -> &str {
        "monitor-only"
    }

    fn on_start(&mut self, sys: &mut System) {
        self.wake = Some(sys.now() + self.period);
    }

    fn next_wake(&self) -> Option<Nanos> {
        self.wake
    }

    fn on_tick(&mut self, sys: &mut System) {
        let _ = sys.rollover_bandwidth();
        self.wake = Some(sys.now() + self.period);
    }
}

/// One point of the throughput-vs-offered-load curve.
#[derive(Clone, Copy, Debug)]
pub struct LoadedPoint {
    /// Background load offered to the CXL link (fraction of peak).
    pub background: f64,
    /// Accesses completed.
    pub accesses: u64,
    /// Simulated time the run took.
    pub total_time: Nanos,
    /// End-of-run loaded CXL latency estimate (unloaded + queue extra).
    pub loaded_latency: Nanos,
    /// End-of-run CXL link utilization the curve was computed from.
    pub utilization: f64,
}

impl LoadedPoint {
    /// Simulated throughput in accesses per simulated second.
    pub fn sim_accesses_per_sec(&self) -> f64 {
        if self.total_time == Nanos::ZERO {
            return 0.0;
        }
        self.accesses as f64 / self.total_time.as_secs_f64()
    }
}

/// Runs `benchmark` once per background in `backgrounds` on a
/// contention-enabled machine (or the fixed-cost machine when `contended`
/// is false, in which case the curve is flat by construction) and returns
/// the curve.
pub fn sweep(
    benchmark: Benchmark,
    seed: u64,
    accesses: u64,
    backgrounds: &[f64],
    contended: bool,
) -> Vec<LoadedPoint> {
    let spec = benchmark.spec();
    backgrounds
        .iter()
        .map(|&background| {
            let (mut sys, region) = if contended {
                crate::standard_contended_system(&spec, background)
            } else {
                crate::standard_system(&spec)
            };
            let mut wl = spec.build(region.base, accesses, seed);
            let mut daemon = MonitorOnly::new(Nanos::from_micros(100));
            let report = cxl_sim::system::run(&mut sys, &mut wl, &mut daemon, accesses);
            LoadedPoint {
                background,
                accesses: report.accesses,
                total_time: report.total_time,
                loaded_latency: sys.loaded_latency(NodeId::Cxl),
                utilization: sys.contention().utilization(NodeId::Cxl),
            }
        })
        .collect()
}

/// The migration-storm backpressure figure: mean demand-access latency in
/// a calm phase versus a phase where page-copy traffic storms the same
/// CXL link.
#[derive(Clone, Copy, Debug)]
pub struct StormFigure {
    /// Whether the run had the contention model enabled.
    pub contended: bool,
    /// Mean demand latency with no migration traffic, ns.
    pub calm_avg_ns: f64,
    /// Mean demand latency while migrations storm the link, ns.
    pub storm_avg_ns: f64,
    /// Pages actually migrated during the storm phase.
    pub migrated: u64,
}

impl StormFigure {
    /// Queueing backpressure visible to demand traffic, ns.
    pub fn backpressure_ns(&self) -> f64 {
        self.storm_avg_ns - self.calm_avg_ns
    }
}

/// Accesses per phase of [`migration_storm`].
const STORM_PHASE_ACCESSES: u64 = 8_192;
/// Demand accesses between migration batches in the storm phase.
const STORM_INTERLEAVE: u64 = 8;
/// Pages migrated per batch.
const STORM_BATCH: u64 = 2;

/// Measures demand latency with and without a concurrent migration storm.
///
/// The schedule is built so the *fixed-cost* path prices every demand
/// access identically in both phases: cache pollution and periodic TLB
/// flushes are disabled, every access is a cold TLB + LLC miss (one touch
/// per line, one line per page stride), and the stormed pages are
/// disjoint from the demand range. Any calm-vs-storm delta is therefore
/// attributable to link queueing alone — exactly zero when `contended` is
/// false, positive when the storm's copy traffic backpressures demand.
pub fn migration_storm(contended: bool) -> StormFigure {
    let demand_pages = 2 * STORM_PHASE_ACCESSES; // one line per page, never reused
    let storm_pages = (STORM_PHASE_ACCESSES / STORM_INTERLEAVE) * STORM_BATCH;
    let total_pages = demand_pages + storm_pages;
    let mut config = SystemConfig::scaled_default()
        .with_cxl_frames(total_pages + 1024)
        .with_ddr_frames(storm_pages + 1024);
    config.migration_pollutes_cache = false;
    config.tlb_flush_interval = None;
    if contended {
        config = config.with_contention(ContentionConfig::enabled_default());
    }
    let mut sys = System::new(config);
    let region = sys
        .alloc_region(total_pages, Placement::AllOnCxl)
        .expect("CXL sized to fit");

    /// One measured phase: cold single-line touches on consecutive fresh
    /// pages, `interleave` invoked between every `STORM_INTERLEAVE`
    /// accesses, windows rolled every 512.
    fn phase(
        sys: &mut System,
        base: cxl_sim::addr::VirtAddr,
        page: &mut u64,
        interleave: &mut dyn FnMut(&mut System),
    ) -> f64 {
        let mut sum_ns = 0u128;
        for i in 0..STORM_PHASE_ACCESSES {
            let addr = base.offset(*page * PAGE_SIZE as u64);
            *page += 1;
            let out = sys.access(addr, false);
            sum_ns += out.latency.0 as u128;
            if (i + 1) % STORM_INTERLEAVE == 0 {
                interleave(sys);
            }
            if (i + 1) % 512 == 0 {
                let _ = sys.rollover_bandwidth();
            }
        }
        sum_ns as f64 / STORM_PHASE_ACCESSES as f64
    }

    let mut page = 0u64;
    let calm_avg_ns = phase(&mut sys, region.base, &mut page, &mut |_| {});

    let mut migrated = 0u64;
    let mut next_victim = demand_pages;
    let storm_avg_ns = phase(&mut sys, region.base, &mut page, &mut |sys| {
        for _ in 0..STORM_BATCH {
            let vpn = region.base.vpn().offset(next_victim);
            next_victim += 1;
            if sys.migrate_page(vpn, NodeId::Ddr).is_ok() {
                migrated += 1;
            }
        }
    });

    StormFigure {
        contended,
        calm_avg_ns,
        storm_avg_ns,
        migrated,
    }
}

/// Renders the sweep + storm figures as the JSON artifact CI uploads.
pub fn render_json(on: &[LoadedPoint], off: &[LoadedPoint], storm: &StormFigure) -> String {
    let mut out = String::from("{\n  \"loaded_latency_sweep\": [\n");
    let render_points = |out: &mut String, points: &[LoadedPoint], label: &str| {
        for (i, p) in points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"contention\": \"{label}\", \"background\": {:.2}, \
                 \"accesses\": {}, \"sim_ns\": {}, \
                 \"sim_accesses_per_sec\": {:.0}, \"loaded_latency_ns\": {}, \
                 \"utilization\": {:.4}}}{}\n",
                p.background,
                p.accesses,
                p.total_time.0,
                p.sim_accesses_per_sec(),
                p.loaded_latency.0,
                p.utilization,
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
    };
    render_points(&mut out, on, "on");
    if !off.is_empty() {
        out.push_str(",\n");
        render_points(&mut out, off, "off");
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"migration_storm\": {{\"contended\": {}, \"calm_avg_ns\": {:.1}, \
         \"storm_avg_ns\": {:.1}, \"backpressure_ns\": {:.1}, \"migrated\": {}}}\n}}\n",
        storm.contended,
        storm.calm_avg_ns,
        storm.storm_avg_ns,
        storm.backpressure_ns(),
        storm.migrated
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_only_rolls_windows() {
        let spec = Benchmark::Mcf.spec();
        let (mut sys, region) = crate::standard_system(&spec);
        let mut wl = spec.build(region.base, 5_000, 1);
        let mut d = MonitorOnly::new(Nanos::from_micros(10));
        let report = cxl_sim::system::run(&mut sys, &mut wl, &mut d, 5_000);
        assert_eq!(report.accesses, 5_000);
        assert_eq!(
            report.migrations.promotions, 0,
            "monitor-only never migrates"
        );
    }

    #[test]
    fn storm_phase_migrates_pages() {
        let fig = migration_storm(true);
        assert!(fig.migrated > 0, "storm never migrated a page");
        assert!(fig.calm_avg_ns > 0.0);
    }
}
