//! Debug harness: M5(HWT) vs M5(HPT) on Redis — promotion progress and
//! p99 anatomy. Not part of the figure suite.

use cxl_sim::memory::NodeId;
use cxl_sim::system::run;
use m5_bench::standard_system;
use m5_core::manager::M5Manager;
use m5_core::policy;
use m5_workloads::registry::Benchmark;

fn main() {
    let accesses: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000_000);
    let spec = Benchmark::Redis.spec();
    let (_, region) = standard_system(&spec);
    let trace = spec.build(region.base, accesses + 64, 9);

    for which in ["none", "hpt", "hwt"] {
        let (mut sys, _) = standard_system(&spec);
        let mut wl = trace.fresh();
        let report = match which {
            "none" => run(
                &mut sys,
                &mut wl,
                &mut cxl_sim::system::NoMigration,
                accesses,
            ),
            "hpt" => {
                let mut m5 = M5Manager::new(policy::simple_hpt_policy());
                let r = run(&mut sys, &mut wl, &mut m5, accesses);
                println!(
                    "[hpt] epochs {} migrate_epochs {} promoter {:?}",
                    m5.epochs(),
                    m5.migrate_epochs(),
                    m5.promoter_stats()
                );
                r
            }
            _ => {
                let mut m5 = M5Manager::new(policy::simple_hwt_policy());
                let r = run(&mut sys, &mut wl, &mut m5, accesses);
                println!(
                    "[hwt] epochs {} migrate_epochs {} promoter {:?}",
                    m5.epochs(),
                    m5.migrate_epochs(),
                    m5.promoter_stats()
                );
                r
            }
        };
        // Redis layout: data pages first, then the hash-index pages.
        let data_pages = 7 * 8192 / 7; // n_keys / objs_per_page
        let index_on_ddr = (data_pages..(data_pages + 112))
            .filter(|&p| {
                sys.page_table()
                    .get(cxl_sim::addr::Vpn(p))
                    .map(|pte| pte.node() == NodeId::Ddr)
                    .unwrap_or(false)
            })
            .count();
        println!("[{which}] index pages on DDR: {index_on_ddr}/112");
        println!(
            "[{which}] time {} p50 {:?} p99 {:?} promoted {} ddr_pages {} ddr_reads {} cxl_reads {}",
            report.total_time,
            report.op_latency.quantile(0.5),
            report.p99(),
            report.migrations.promotions,
            sys.nr_pages(NodeId::Ddr),
            report.reads_on(NodeId::Ddr),
            report.reads_on(NodeId::Cxl),
        );
    }
}
