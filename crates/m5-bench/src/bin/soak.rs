//! RAS chaos-soak runner.
//!
//! Runs the default campaign set (seeded chaos mixes, clean-room
//! evacuations, and a squeezed-survivor drain) across the thread pool,
//! prints the canonical artifact, and exits non-zero if any campaign
//! violates the RAS contract.
//!
//! Flags:
//! * `--long` — nightly scale: 4× the chaos seeds, larger access budgets.
//! * `--seeds N` — override the number of chaos campaigns.
//! * `--accesses N` — override the per-campaign access budget (the
//!   squeeze campaign keeps its own budget: it must outlive the
//!   evacuation deadline).
//! * `--shards N` — work-queue width and per-campaign simulation shard
//!   count (default: available parallelism). Recorded in the artifact
//!   header; campaign outcomes are byte-identical at every count.
//! * `--out PATH` — also write the artifact to `PATH`.
//! * `--resume DIR` — checkpoint each campaign into `DIR/<name>.ckpt`
//!   periodically and resume any campaign whose checkpoint survives from
//!   a previous (killed) invocation instead of restarting it.
//! * `--checkpoint-every N` — accesses between checkpoints in resume
//!   mode (default 100000).

use m5_bench::soak::{
    all_failures, artifact_with_shards, default_campaigns, run_campaign_resumable_sharded,
    soak_parallel_sharded, CampaignReport, SoakScenario, SoakSpec,
};
use std::path::PathBuf;

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1).and_then(|s| s.parse().ok())
}

fn flag_str(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1).cloned()
}

/// Resume-mode driver: sequential (each campaign owns one checkpoint
/// file; a resumed run must see the file its predecessor left).
fn soak_resumable(
    specs: &[SoakSpec],
    dir: &PathBuf,
    every: u64,
    shards: usize,
) -> Vec<CampaignReport> {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create checkpoint dir {}: {e}", dir.display());
        std::process::exit(2);
    }
    specs
        .iter()
        .map(|s| {
            run_campaign_resumable_sharded(
                *s,
                &dir.join(format!("{}.ckpt", s.name())),
                every,
                shards,
            )
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let long = args.iter().any(|a| a == "--long");
    let mut specs = default_campaigns(long);
    if let Some(n) = flag_value(&args, "--seeds") {
        let template = specs[0];
        let tail: Vec<SoakSpec> = specs
            .iter()
            .copied()
            .filter(|s| s.scenario != SoakScenario::Chaos)
            .collect();
        specs = (0..n)
            .map(|seed| SoakSpec { seed, ..template })
            .chain(tail)
            .collect();
    }
    if let Some(a) = flag_value(&args, "--accesses") {
        for s in &mut specs {
            if s.scenario != SoakScenario::Squeeze {
                s.accesses = a;
            }
        }
    }
    let shards = flag_value(&args, "--shards")
        .map(|n| n as usize)
        .unwrap_or_else(rayon::current_num_threads)
        .max(1);
    rayon::set_num_threads(shards);

    let reports = match flag_str(&args, "--resume") {
        Some(dir) => {
            let every = flag_value(&args, "--checkpoint-every").unwrap_or(100_000);
            soak_resumable(&specs, &PathBuf::from(dir), every, shards)
        }
        None => soak_parallel_sharded(&specs, shards),
    };
    let text = artifact_with_shards(&reports, shards);
    print!("{text}");
    if let Some(i) = args.iter().position(|a| a == "--out") {
        if let Some(path) = args.get(i + 1) {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    let failures = all_failures(&specs, &reports);
    if !failures.is_empty() {
        eprintln!("soak FAILED ({} contract violations):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("soak OK: {} campaigns clean", reports.len());
}
