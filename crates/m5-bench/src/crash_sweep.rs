//! Crash-point sweep harness.
//!
//! The transactional migration engine journals every migration as a
//! write-ahead transaction (`Intent → CopyInProgress → Remapped →
//! Committed`), and a [`FaultKind::ControllerReset`] strikes exactly at a
//! journal-append boundary. That makes crashes *enumerable*: a fault-free
//! baseline run of a workload performs some number `N` of journal appends,
//! and injecting a reset at step `k` for every `k in 1..=N` exercises a
//! crash at every reachable transaction state the workload produces.
//!
//! For each sweep point the harness runs the full workload + M5 manager,
//! lets the manager's recovery prologue replay the journal, and checks
//! that (a) the run still completes its access budget and (b)
//! [`System::check_invariants`] holds at exit. The sweep tests live in
//! `tests/crash_sweep.rs`; CI runs them in release mode and uploads the
//! per-point failure reports (`M5_SWEEP_ARTIFACTS=<dir>`) when they fail.

use crate::pipeline::run_overlapped;
use cxl_sim::faults::{FaultKind, FaultPlan};
use cxl_sim::journal::RecoveryReport;
use cxl_sim::prelude::*;
use cxl_sim::system::ChunkedRun;
use m5_core::manager::{M5Config, M5Manager};
use m5_workloads::registry::Benchmark;

/// One sweep workload: a benchmark pinned to a seed and a deliberately
/// small access budget — the sweep reruns the whole workload once per
/// journal step, so the budget bounds the sweep's total runtime.
#[derive(Clone, Copy, Debug)]
pub struct SweepSpec {
    /// Short name, used in failure reports and artifact files.
    pub name: &'static str,
    /// The workload.
    pub benchmark: Benchmark,
    /// Trace seed.
    pub seed: u64,
    /// Access budget per sweep point.
    pub accesses: u64,
    /// Run the sweep on a contention-enabled machine (queueing + shared
    /// CXL link budget), so crash recovery is exercised with migration
    /// traffic backpressuring demand accesses.
    pub contended: bool,
}

/// The three sweep workloads — the same benchmark/seed families as the
/// golden suite (`crate::golden::GOLDENS`), with budgets sized so the full
/// sweep (baseline steps × full runs each) stays in CI-friendly time.
pub const SWEEPS: [SweepSpec; 3] = [
    SweepSpec {
        name: "graph",
        benchmark: Benchmark::Pr,
        seed: 42,
        accesses: 30_000,
        contended: false,
    },
    SweepSpec {
        name: "kv",
        benchmark: Benchmark::Redis,
        seed: 42,
        accesses: 30_000,
        contended: false,
    },
    SweepSpec {
        name: "spec",
        benchmark: Benchmark::Mcf,
        seed: 42,
        accesses: 30_000,
        contended: false,
    },
];

/// The observable outcome of one sweep point (or of the baseline run).
#[derive(Clone, Debug)]
pub struct SweepRun {
    /// Reset injection point (`None` for the fault-free baseline).
    pub at_step: Option<u64>,
    /// Accesses the run actually completed.
    pub accesses: u64,
    /// Journal appends performed by the end of the run.
    pub steps: u64,
    /// Committed migrations per the journal's terminal counters.
    pub committed: u64,
    /// Whether the armed reset actually struck during the run.
    pub fired: bool,
    /// The end-of-run journal replay, if the run ended fenced (a reset
    /// that struck after the manager's last epoch).
    pub final_recovery: Option<RecoveryReport>,
    /// Invariant violations at exit (must be empty).
    pub violations: Vec<String>,
}

/// Background load used by contended sweep points: past the default knee,
/// so queueing delay is live without drowning the run in standing latency.
pub const SWEEP_BACKGROUND: f64 = 0.7;

fn run_spec(s: &SweepSpec, plan: &FaultPlan, at_step: Option<u64>) -> SweepRun {
    let spec = s.benchmark.spec();
    let (mut sys, region) = if s.contended {
        crate::standard_contended_system_with_faults(&spec, plan, SWEEP_BACKGROUND)
    } else {
        crate::standard_system_with_faults(&spec, plan)
    };
    let mut wl = spec.build(region.base, s.accesses, s.seed);
    let mut m5 = M5Manager::new(M5Config::default());
    let report = run_overlapped(&mut sys, &mut wl, &mut m5, s.accesses);
    // A reset that strikes after the manager's last epoch leaves the
    // engine fenced at exit; recovery is then the *next* run's first act,
    // which the sweep performs here so invariants are checked post-replay.
    let final_recovery = sys.needs_recovery().then(|| sys.recover());
    SweepRun {
        at_step,
        accesses: report.accesses,
        steps: sys.journal().steps(),
        committed: sys.journal().counters().committed(),
        fired: at_step.is_some() && !sys.reset_pending(),
        final_recovery,
        violations: sys.check_invariants(),
    }
}

/// Runs the fault-free baseline, whose `steps` defines the sweep range.
pub fn baseline(s: &SweepSpec) -> SweepRun {
    run_spec(s, &FaultPlan::none(), None)
}

/// Runs one sweep point: the workload with a controller reset armed to
/// strike at journal step `at_step`.
pub fn run_with_reset(s: &SweepSpec, at_step: u64) -> SweepRun {
    let plan = FaultPlan::none().with(Nanos::ZERO, FaultKind::ControllerReset { at_step });
    run_spec(s, &plan, Some(at_step))
}

/// A fault-free mid-run snapshot the sweep seeds each point from — the
/// perturbed run is identical to the baseline up to the reset, so points
/// striking after the snapshot's journal step need not replay the common
/// prefix.
#[derive(Clone)]
pub struct SweepSeed {
    /// Encoded run checkpoint (system + manager + driver + workload cursor).
    bytes: Vec<u8>,
    /// The machine configuration the snapshot was taken under.
    config: SystemConfig,
    /// The region base the workload trace was bound to.
    base: cxl_sim::addr::VirtAddr,
    /// Journal steps performed by the snapshot point. Sweep points at or
    /// below this step struck inside the prefix; seed only the tail.
    pub steps: u64,
    /// Accesses executed by the snapshot point.
    pub accesses: u64,
}

/// Runs `s` fault-free to `at_accesses` with the sequential chunked
/// driver (byte-identical to the overlapped one) and captures the seed
/// snapshot.
pub fn seed_checkpoint(s: &SweepSpec, at_accesses: u64) -> SweepSeed {
    use crate::checkpoint as ck;
    let spec = s.benchmark.spec();
    let (mut sys, region) = if s.contended {
        crate::standard_contended_system(&spec, SWEEP_BACKGROUND)
    } else {
        crate::standard_system(&spec)
    };
    let mut wl = spec.build(region.base, s.accesses, s.seed);
    let mut m5 = M5Manager::new(M5Config::default());
    let mut run = ChunkedRun::begin(&mut sys, &mut m5);
    ck::drive_to(
        &mut sys,
        &mut m5,
        &mut run,
        &mut wl,
        at_accesses.min(s.accesses),
    );
    let cp = ck::capture(&mut sys, &m5, &run, &wl);
    SweepSeed {
        bytes: cp.encode(),
        config: sys.config().clone(),
        base: region.base,
        steps: sys.journal().steps(),
        accesses: run.accesses(),
    }
}

/// Runs one sweep point from the seed: restore the snapshot under a plan
/// that arms a controller reset at journal step `at_step`, then run only
/// the tail. `at_step` should be greater than `seed.steps` — earlier
/// steps already happened inside the snapshotted prefix and the reset
/// would instead strike the first append after restore.
pub fn run_with_reset_from_seed(s: &SweepSpec, seed: &SweepSeed, at_step: u64) -> SweepRun {
    use crate::checkpoint as ck;
    let plan = FaultPlan::none().with(Nanos::ZERO, FaultKind::ControllerReset { at_step });
    let cp = cxl_sim::checkpoint::Checkpoint::decode(&seed.bytes)
        .expect("seed snapshot was encoded by capture and never left memory");
    let spec = s.benchmark.spec();
    let mut wl = spec.build(seed.base, s.accesses, s.seed);
    let resumed = ck::resume(
        &cp,
        seed.config.clone(),
        &plan,
        M5Config::default(),
        &mut wl,
    )
    .expect("seed snapshot restores under its own config");
    let ck::ResumedRun {
        mut sys,
        mut m5,
        mut run,
    } = resumed;
    ck::drive_to(&mut sys, &mut m5, &mut run, &mut wl, s.accesses);
    let report = run.finish(&mut sys, &m5);
    let final_recovery = sys.needs_recovery().then(|| sys.recover());
    SweepRun {
        at_step: Some(at_step),
        accesses: report.accesses,
        steps: sys.journal().steps(),
        committed: sys.journal().counters().committed(),
        fired: !sys.reset_pending(),
        final_recovery,
        violations: sys.check_invariants(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_fault_free_and_journals_migrations() {
        let b = baseline(&SWEEPS[0]);
        assert_eq!(b.at_step, None);
        assert!(!b.fired);
        assert!(b.final_recovery.is_none());
        assert!(b.violations.is_empty(), "{:?}", b.violations);
        assert!(b.committed > 0, "baseline never migrated");
        // A committed migration is exactly 4 appends; aborts are 2.
        assert!(b.steps >= 4 * b.committed);
    }
}
