//! Machine-readable experiment results.
//!
//! Every figure harness prints a human-readable table; passing
//! `--csv <dir>` additionally writes the rows as CSV so plots can be
//! regenerated without scraping stdout (the paper artifact's
//! `organize_results.sh` / `plot_all_figs.py` pipeline equivalent).

use serde::Serialize;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One generic result row: an experiment id, a benchmark/config label,
/// a series name, and a value.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ResultRow {
    /// Experiment id (e.g. "fig09").
    pub experiment: String,
    /// Benchmark or x-axis label (e.g. "roms").
    pub label: String,
    /// Series within the experiment (e.g. "m5-hpt").
    pub series: String,
    /// The measured value.
    pub value: f64,
}

impl ResultRow {
    /// Builds a row.
    pub fn new(
        experiment: impl Into<String>,
        label: impl Into<String>,
        series: impl Into<String>,
        value: f64,
    ) -> ResultRow {
        ResultRow {
            experiment: experiment.into(),
            label: label.into(),
            series: series.into(),
            value,
        }
    }
}

/// A CSV sink bound to an output directory; a no-op when disabled.
#[derive(Debug, Default)]
pub struct CsvSink {
    dir: Option<PathBuf>,
    rows: Vec<ResultRow>,
}

impl CsvSink {
    /// A sink writing under `dir`.
    pub fn new(dir: impl AsRef<Path>) -> CsvSink {
        CsvSink {
            dir: Some(dir.as_ref().to_path_buf()),
            rows: Vec::new(),
        }
    }

    /// A disabled sink: `record` buffers nothing, `flush` writes nothing.
    pub fn disabled() -> CsvSink {
        CsvSink::default()
    }

    /// Builds a sink from the process arguments (`--csv <dir>`).
    pub fn from_args() -> CsvSink {
        let args: Vec<String> = std::env::args().collect();
        match args.iter().position(|a| a == "--csv") {
            Some(i) => match args.get(i + 1) {
                Some(dir) => CsvSink::new(dir),
                None => CsvSink::disabled(),
            },
            None => CsvSink::disabled(),
        }
    }

    /// Whether rows will actually be written.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Buffers one row (no-op when disabled).
    pub fn record(&mut self, row: ResultRow) {
        if self.dir.is_some() {
            self.rows.push(row);
        }
    }

    /// Buffers one row from parts.
    pub fn push(&mut self, experiment: &str, label: &str, series: &str, value: f64) {
        self.record(ResultRow::new(experiment, label, series, value));
    }

    /// Number of buffered rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Writes the buffered rows to `<dir>/<experiment>.csv` (one file per
    /// experiment id) and clears the buffer.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or files.
    pub fn flush(&mut self) -> std::io::Result<Vec<PathBuf>> {
        let Some(dir) = &self.dir else {
            self.rows.clear();
            return Ok(Vec::new());
        };
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let mut by_exp: std::collections::BTreeMap<&str, Vec<&ResultRow>> = Default::default();
        for r in &self.rows {
            by_exp.entry(&r.experiment).or_default().push(r);
        }
        for (exp, rows) in by_exp {
            let path = dir.join(format!("{exp}.csv"));
            let mut f = fs::File::create(&path)?;
            writeln!(f, "experiment,label,series,value")?;
            for r in rows {
                writeln!(
                    f,
                    "{},{},{},{}",
                    csv_escape(&r.experiment),
                    csv_escape(&r.label),
                    csv_escape(&r.series),
                    r.value
                )?;
            }
            written.push(path);
        }
        self.rows.clear();
        Ok(written)
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_a_noop() {
        let mut sink = CsvSink::disabled();
        sink.push("fig09", "roms", "m5", 1.38);
        assert!(sink.is_empty());
        assert!(!sink.is_enabled());
        assert!(sink.flush().unwrap().is_empty());
    }

    #[test]
    fn writes_one_file_per_experiment() {
        let dir = std::env::temp_dir().join(format!("m5csv-{}", std::process::id()));
        let mut sink = CsvSink::new(&dir);
        sink.push("fig09", "roms", "m5-hpt", 1.375);
        sink.push("fig09", "redis", "anb", 0.964);
        sink.push("fig03", "mcf", "damon", 0.251);
        let files = sink.flush().unwrap();
        assert_eq!(files.len(), 2);
        let fig09 = fs::read_to_string(dir.join("fig09.csv")).unwrap();
        assert!(fig09.starts_with("experiment,label,series,value\n"));
        assert!(fig09.contains("fig09,roms,m5-hpt,1.375"));
        assert!(sink.is_empty(), "flush clears the buffer");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn escaping_handles_commas_and_quotes() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
