//! Run-level checkpoint/restore harness.
//!
//! [`cxl_sim::system::System::checkpoint`] captures the machine; a *run*
//! is more than the machine: the M5 manager (component state + tracker
//! SRAM), the chunk driver's report baseline, and the workload cursor.
//! This module bundles all four into one manifest — sections `m5`, `run`,
//! and `workload` appended to the system's own — commits it with the
//! two-phase tmp→prev→rename protocol (honouring any armed
//! [`cxl_sim::faults::FaultKind::TornCheckpoint`] fault), and rebuilds a
//! running machine from the result, falling back to the previous valid
//! image when the primary is torn.
//!
//! The restore≡continue contract (`tests/checkpoint.rs`): checkpointing a
//! run at any interior point and resuming it in a fresh process yields a
//! byte-identical final checkpoint, [`RunReport`], and metrics snapshot
//! to the run that never stopped. Checkpointing is opt-in — a run that
//! never calls [`capture`] is untouched by this module.

use crate::golden::GoldenSpec;
use cxl_sim::checkpoint::{
    section_err, Checkpoint, CheckpointError, CodecError, RestoreError, StateReader, StateWriter,
};
use cxl_sim::chunk::AccessChunk;
use cxl_sim::faults::FaultPlan;
use cxl_sim::prelude::*;
use cxl_sim::system::{ChunkedRun, DEFAULT_CHUNK_ACCESSES};
use m5_core::manager::{M5Config, M5Manager};
use m5_workloads::access::ReplayWorkload;
use std::path::Path;

/// A workload stream whose cursor can ride in a run checkpoint.
///
/// Trace contents and RNG parameters are pure functions of the workload
/// spec, so the restoring side rebuilds the stream from the spec and then
/// loads only position-like state (a replay cursor, an RNG position, a
/// remaining-budget counter) from the snapshot.
pub trait StreamCheckpoint: AccessStream {
    /// Serializes the stream's cursor state.
    fn save_cursor(&self, w: &mut StateWriter);

    /// Restores cursor state into a freshly built stream.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    fn load_cursor(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError>;
}

impl StreamCheckpoint for ReplayWorkload {
    fn save_cursor(&self, w: &mut StateWriter) {
        w.put_usize(self.pos());
    }

    fn load_cursor(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.seek(r.get_usize()?);
        Ok(())
    }
}

/// Captures the full run state: the system's own sections plus `m5`
/// (manager components + attached tracker SRAM), `run` (driver baseline +
/// op-latency accumulators), and `workload` (stream cursor).
pub fn capture<W>(sys: &mut System, m5: &M5Manager, run: &ChunkedRun, wl: &W) -> Checkpoint
where
    W: StreamCheckpoint + ?Sized,
{
    let mut cp = sys.checkpoint();
    let mut w = StateWriter::new();
    m5.save(sys, &mut w);
    cp.add_section("m5", w.finish());
    let mut w = StateWriter::new();
    run.save(&mut w);
    cp.add_section("run", w.finish());
    let mut w = StateWriter::new();
    wl.save_cursor(&mut w);
    cp.add_section("workload", w.finish());
    cp
}

/// Commits `cp` to `path` with the two-phase protocol. When the system's
/// injector has an armed [`cxl_sim::faults::FaultKind::TornCheckpoint`]
/// fault, the commit is torn at the armed section index instead — the
/// mid-write crash the fault models. Returns whether the commit was torn.
///
/// # Errors
///
/// [`CheckpointError::Io`] if a filesystem step fails.
pub fn commit(sys: &mut System, cp: &Checkpoint, path: &Path) -> Result<bool, CheckpointError> {
    match sys.take_torn_checkpoint() {
        Some(at) => {
            cp.commit_torn(path, at)?;
            Ok(true)
        }
        None => {
            cp.commit(path)?;
            Ok(false)
        }
    }
}

/// A run rebuilt from a checkpoint, ready for [`drive_to`].
pub struct ResumedRun {
    /// The restored machine (fresh controller; the manager restore
    /// re-attached its tracker devices and reloaded their SRAM).
    pub sys: System,
    /// The restored manager. `on_start` must NOT be called on it — the
    /// checkpointed run already started it.
    pub m5: M5Manager,
    /// The restored chunk driver. Its report baseline is the original
    /// run's, so the final [`RunReport`] deltas match the uninterrupted
    /// run's.
    pub run: ChunkedRun,
}

/// Rebuilds a run from `cp`. `config` and `plan` are the machine
/// configuration and fault plan the caller would have built the original
/// run with (both pure data, validated / re-armed against the snapshot);
/// `wl` is the freshly rebuilt workload whose cursor is seeked forward.
///
/// Passing a `plan` that differs from the checkpointed one is allowed and
/// deliberate: the checkpoint-seeded crash sweep snapshots a fault-free
/// prefix once, then replays the tail under a different fault each point.
///
/// # Errors
///
/// [`RestoreError::ConfigMismatch`] when `config` differs from the
/// checkpointed one, [`RestoreError::MissingSection`] /
/// [`RestoreError::Corrupt`] on structural damage.
pub fn resume<W>(
    cp: &Checkpoint,
    config: SystemConfig,
    plan: &FaultPlan,
    m5_config: M5Config,
    wl: &mut W,
) -> Result<ResumedRun, RestoreError>
where
    W: StreamCheckpoint + ?Sized,
{
    let mut sys = System::restore(config, plan, cp)?;
    let mut r = StateReader::new(cp.require("m5")?);
    let m5 = M5Manager::restore(m5_config, &mut sys, &mut r).map_err(section_err("m5"))?;
    r.expect_end().map_err(section_err("m5"))?;
    let mut r = StateReader::new(cp.require("run")?);
    let run = ChunkedRun::resume(&mut r).map_err(section_err("run"))?;
    r.expect_end().map_err(section_err("run"))?;
    let mut r = StateReader::new(cp.require("workload")?);
    wl.load_cursor(&mut r).map_err(section_err("workload"))?;
    r.expect_end().map_err(section_err("workload"))?;
    Ok(ResumedRun { sys, m5, run })
}

/// [`resume`] from a file, with the `.prev` fallback: a missing, torn, or
/// corrupt primary image falls back to the previous valid checkpoint.
/// Returns the rebuilt run and whether the fallback was taken.
///
/// # Errors
///
/// [`RestoreError::NoValidCheckpoint`] when neither image validates, plus
/// everything [`resume`] can return.
pub fn resume_from_file<W>(
    path: &Path,
    config: SystemConfig,
    plan: &FaultPlan,
    m5_config: M5Config,
    wl: &mut W,
) -> Result<(ResumedRun, bool), RestoreError>
where
    W: StreamCheckpoint + ?Sized,
{
    let loaded = Checkpoint::load(path)?;
    let resumed = resume(&loaded.checkpoint, config, plan, m5_config, wl)?;
    Ok((resumed, loaded.fell_back))
}

/// Drives the run to `target` *total* accesses with the sequential
/// chunked loop. Unlike the overlapped driver, the workload cursor never
/// runs ahead of the simulation — which is what lets a mid-run checkpoint
/// record a cursor the restored run resumes from exactly. Chunk capacity
/// matches the overlapped driver's, so wakeup and fault interleaving (and
/// therefore the final report) are byte-identical to `run_overlapped`.
pub fn drive_to<W>(
    sys: &mut System,
    m5: &mut M5Manager,
    run: &mut ChunkedRun,
    wl: &mut W,
    target: u64,
) where
    W: StreamCheckpoint + ?Sized,
{
    let mut chunk = AccessChunk::with_capacity(DEFAULT_CHUNK_ACCESSES);
    while run.accesses() < target {
        chunk.clear();
        let left = target - run.accesses();
        chunk.set_limit(left.min(DEFAULT_CHUNK_ACCESSES as u64) as usize);
        if wl.fill_chunk(&mut chunk) == 0 {
            break;
        }
        run.drive(sys, m5, &chunk, target);
    }
}

/// What a [`drive_with_checkpoints`] leg accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Commits attempted (periodic, one per interval reached).
    pub commits: u64,
    /// Commits an armed torn-checkpoint fault cut short.
    pub torn_commits: u64,
}

/// Drives to `target`, committing a checkpoint to `path` every `every`
/// accesses (including one at `target`). Armed torn-checkpoint faults
/// tear the matching commit, exactly as a crash mid-write would.
///
/// # Errors
///
/// [`CheckpointError::Io`] if a commit's filesystem step fails.
pub fn drive_with_checkpoints<W>(
    sys: &mut System,
    m5: &mut M5Manager,
    run: &mut ChunkedRun,
    wl: &mut W,
    target: u64,
    every: u64,
    path: &Path,
) -> Result<DriveOutcome, CheckpointError>
where
    W: StreamCheckpoint + ?Sized,
{
    let every = every.max(1);
    let mut out = DriveOutcome::default();
    while run.accesses() < target {
        let next = (run.accesses() + every).min(target);
        drive_to(sys, m5, run, wl, next);
        if run.accesses() < next {
            // The stream ended early; nothing more will execute.
            break;
        }
        let cp = capture(sys, m5, run, wl);
        out.commits += 1;
        if commit(sys, &cp, path)? {
            out.torn_commits += 1;
        }
    }
    Ok(out)
}

/// Builds a golden run's machine, workload, and manager — the same
/// construction as [`crate::golden::run_golden`], but without starting
/// the loop, so the chunked / checkpointed drivers can own it.
pub fn golden_parts(g: &GoldenSpec) -> (System, ReplayWorkload, M5Manager) {
    let spec = g.benchmark.spec();
    let (mut sys, region) = crate::standard_system(&spec);
    sys.install_telemetry(Telemetry::enabled());
    let wl = spec.build(region.base, g.accesses, g.seed);
    (sys, wl, M5Manager::new(M5Config::default()))
}

/// [`golden_parts`] on a machine executing `plan`, optionally with the
/// contention model enabled at `background` offered load — the hostile
/// variant of the restore≡continue differential.
pub fn golden_parts_faulted(
    g: &GoldenSpec,
    plan: &FaultPlan,
    background: Option<f64>,
) -> (System, ReplayWorkload, M5Manager) {
    let spec = g.benchmark.spec();
    let (mut sys, region) = match background {
        Some(b) => crate::standard_contended_system_with_faults(&spec, plan, b),
        None => crate::standard_system_with_faults(&spec, plan),
    };
    sys.install_telemetry(Telemetry::enabled());
    let wl = spec.build(region.base, g.accesses, g.seed);
    (sys, wl, M5Manager::new(M5Config::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::faults::FaultKind;

    fn test_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("m5-ckpt-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&d).expect("temp dir creatable");
        d
    }

    #[test]
    fn replay_cursor_roundtrips_through_the_codec() {
        use m5_workloads::registry::Benchmark;
        let spec = Benchmark::Redis.spec();
        let mut wl = spec.build(cxl_sim::addr::VirtAddr(0), 5_000, 9);
        for _ in 0..123 {
            wl.next_access();
        }
        let mut w = StateWriter::new();
        wl.save_cursor(&mut w);
        let bytes = w.finish();
        let mut fresh = spec.build(cxl_sim::addr::VirtAddr(0), 5_000, 9);
        let mut r = StateReader::new(&bytes);
        fresh.load_cursor(&mut r).expect("cursor decodes");
        r.expect_end().expect("nothing trails the cursor");
        assert_eq!(fresh.pos(), 123);
        assert_eq!(fresh.next_access(), wl.next_access());
    }

    #[test]
    fn commit_tears_exactly_when_the_injector_armed_a_fault() {
        let dir = test_dir("commit-torn");
        let path = dir.join("sys.ckpt");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(dir.join("sys.ckpt.prev"));
        let plan = FaultPlan::none().with(Nanos::ZERO, FaultKind::TornCheckpoint { at_section: 1 });
        let mut sys = System::with_fault_plan(SystemConfig::small(), &plan);
        let region = sys.alloc_region(4, Placement::AllOnCxl).expect("fits");
        sys.access(region.base, false); // polls the injector: the fault arms
        let cp = sys.checkpoint();
        assert!(
            commit(&mut sys, &cp, &path).expect("commit io"),
            "armed fault must tear"
        );
        // A torn primary with no previous image: nothing valid to load.
        assert!(Checkpoint::load(&path).is_err());
        // The fault was consumed; the next commit is clean and loadable.
        let cp2 = sys.checkpoint();
        assert!(!commit(&mut sys, &cp2, &path).expect("commit io"));
        let loaded = Checkpoint::load(&path).expect("clean image loads");
        assert!(!loaded.fell_back);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
