//! Overlapped generate/simulate execution: double-buffered chunks on the
//! vendored `rayon` work queue.
//!
//! [`run_overlapped`] drives the same chunk-level primitives as
//! `cxl_sim::system::run_chunked` — [`ChunkedRun::begin`] /
//! [`ChunkedRun::drive`] / [`ChunkedRun::finish`] — but generates chunk
//! N+1 on a second thread while chunk N simulates. The hand-off is
//! strictly index-ordered (simulate front, generate back, barrier, swap),
//! and generation is a pure function of the workload cursor, so the
//! result is **byte-identical** to the sequential chunked driver and to
//! the per-access reference loop (`tests/chunk_determinism.rs` asserts
//! exactly this).
//!
//! On a single-core pool `rayon::join` degenerates to sequential calls,
//! which is again the same schedule.

use cxl_sim::chunk::AccessChunk;
use cxl_sim::prelude::*;
use cxl_sim::system::{ChunkedRun, DEFAULT_CHUNK_ACCESSES};

/// [`run_overlapped_chunked`] with the default chunk capacity.
pub fn run_overlapped<W, D>(
    sys: &mut System,
    workload: &mut W,
    daemon: &mut D,
    max_accesses: u64,
) -> RunReport
where
    W: AccessStream + Send + ?Sized,
    D: MigrationDaemon + Send + ?Sized,
{
    run_overlapped_chunked(sys, workload, daemon, max_accesses, DEFAULT_CHUNK_ACCESSES)
}

/// [`run_overlapped_chunked_timed`] with the default chunk capacity.
pub fn run_overlapped_timed<W, D>(
    sys: &mut System,
    workload: &mut W,
    daemon: &mut D,
    max_accesses: u64,
) -> (RunReport, u128)
where
    W: AccessStream + Send + ?Sized,
    D: MigrationDaemon + Send + ?Sized,
{
    run_overlapped_chunked_timed(sys, workload, daemon, max_accesses, DEFAULT_CHUNK_ACCESSES)
}

/// Drives `workload` through `sys` under `daemon`, overlapping chunk
/// generation with simulation.
///
/// Unlike `run`/`run_chunked`, the workload cursor may advance up to one
/// chunk past the access budget (the look-ahead chunk is generated before
/// the budget stop is known); use the sequential drivers for protocols
/// that resume the same stream across calls with exact budgets.
pub fn run_overlapped_chunked<W, D>(
    sys: &mut System,
    workload: &mut W,
    daemon: &mut D,
    max_accesses: u64,
    chunk_capacity: usize,
) -> RunReport
where
    W: AccessStream + Send + ?Sized,
    D: MigrationDaemon + Send + ?Sized,
{
    run_overlapped_chunked_timed(sys, workload, daemon, max_accesses, chunk_capacity).0
}

/// [`run_overlapped_chunked`] that additionally reports the wall-clock
/// nanoseconds spent on the *simulate* side (`drive` + `finish`), measured
/// around each chunk hand-off.
///
/// Generation runs concurrently on the other `rayon::join` arm, so
/// `total wall − simulate ns` is the generation cost that the overlap
/// could **not** hide (plus the driver's own swap overhead) — exactly the
/// split the throughput bench wants for a coherent `gen + sim = wall`
/// accounting. Two monotonic-clock reads per multi-thousand-access chunk
/// are noise next to the chunk's simulation cost.
pub fn run_overlapped_chunked_timed<W, D>(
    sys: &mut System,
    workload: &mut W,
    daemon: &mut D,
    max_accesses: u64,
    chunk_capacity: usize,
) -> (RunReport, u128)
where
    W: AccessStream + Send + ?Sized,
    D: MigrationDaemon + Send + ?Sized,
{
    let mut run = ChunkedRun::begin(sys, daemon);
    let mut front = AccessChunk::with_capacity(chunk_capacity);
    let mut back = AccessChunk::with_capacity(chunk_capacity);
    let mut sim_ns: u128 = 0;

    front.set_limit(max_accesses.min(chunk_capacity as u64) as usize);
    workload.fill_chunk(&mut front);
    while !front.is_empty() && run.accesses() < max_accesses {
        // Accesses that will have executed once `front` completes; the
        // look-ahead fill is capped so it never generates past the budget
        // by more than the in-flight chunk.
        let ahead = run.accesses() + front.len() as u64;
        let (drove_ns, generated) = rayon::join(
            || {
                let t = std::time::Instant::now();
                run.drive(sys, daemon, &front, max_accesses);
                t.elapsed().as_nanos()
            },
            || {
                back.clear();
                let left = max_accesses.saturating_sub(ahead);
                back.set_limit(left.min(chunk_capacity as u64) as usize);
                workload.fill_chunk(&mut back)
            },
        );
        let _ = generated;
        sim_ns += drove_ns;
        std::mem::swap(&mut front, &mut back);
    }
    let t = std::time::Instant::now();
    let report = run.finish(sys, daemon);
    sim_ns += t.elapsed().as_nanos();
    (report, sim_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::system::{run_chunked, run_per_access, NoMigration};
    use m5_workloads::registry::Benchmark;

    /// The overlapped driver must consume and report exactly what the
    /// per-access loop does, at any chunk size.
    #[test]
    fn overlapped_matches_per_access_reference() {
        let spec = Benchmark::Redis.spec();
        let accesses = 30_000;
        let reference = {
            let (mut sys, region) = crate::standard_system(&spec);
            let mut wl = spec.build(region.base, accesses, 7);
            let mut d = NoMigration;
            run_per_access(&mut sys, &mut wl, &mut d, accesses)
        };
        for cap in [1usize, 17, 1024, 4096] {
            let (mut sys, region) = crate::standard_system(&spec);
            let mut wl = spec.build(region.base, accesses, 7);
            let mut d = NoMigration;
            let got = run_overlapped_chunked(&mut sys, &mut wl, &mut d, accesses, cap);
            assert_eq!(
                format!("{got:?}"),
                format!("{reference:?}"),
                "overlapped(cap={cap}) diverged from the per-access loop"
            );
        }
    }

    /// And it must match the sequential chunked driver when the budget
    /// cuts the run short mid-chunk.
    #[test]
    fn overlapped_budget_stop_matches_chunked() {
        let spec = Benchmark::Redis.spec();
        let (mut sys_a, region_a) = crate::standard_system(&spec);
        let mut wl_a = spec.build(region_a.base, 10_000, 3);
        let mut da = NoMigration;
        let a = run_chunked(&mut sys_a, &mut wl_a, &mut da, 2_500, 512);

        let (mut sys_b, region_b) = crate::standard_system(&spec);
        let mut wl_b = spec.build(region_b.base, 10_000, 3);
        let mut db = NoMigration;
        let b = run_overlapped_chunked(&mut sys_b, &mut wl_b, &mut db, 2_500, 512);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(b.accesses, 2_500);
    }
}
