//! Sharded-run drivers and their byte-identity evidence bundles.
//!
//! The simulator's core-sharded engine (`cxl_sim::oplog` plus the
//! sharded staged block in `cxl_sim::system`) promises that a run at any
//! shard count is **byte-identical** to the sequential driver. This
//! module turns that promise into something a test or bench can hold in
//! its hands: [`observe_golden`] drives one golden workload to completion
//! at a chosen shard count and returns a [`RunEvidence`] — the rendered
//! telemetry snapshot, the debug-formatted [`RunReport`], and the encoded
//! run checkpoint. Two evidences being equal means every counter, gauge,
//! histogram percentile, report field, and checkpointed byte of machine
//! state agreed; `tests/sharded_determinism.rs` asserts exactly that
//! across shard counts × goldens × (faults, contention).
//!
//! Shard count is a *runtime* knob ([`System::set_sim_shards`]): it is
//! not part of the config fingerprint and never appears in a checkpoint,
//! so a run checkpointed at 8 shards restores and resumes at 1 (or any
//! other count) with no compatibility shim.

use crate::golden::GoldenSpec;
use cxl_sim::faults::FaultPlan;
use cxl_sim::prelude::*;

/// Everything observable about one finished golden run, in byte-stable
/// form. Field-by-field equality between two evidences is the sharded ≡
/// sequential contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunEvidence {
    /// Canonical golden-format telemetry snapshot (every counter, gauge,
    /// and histogram the run published).
    pub snapshot: String,
    /// Debug-formatted [`RunReport`].
    pub report: String,
    /// Encoded end-of-run checkpoint: the full machine + manager +
    /// driver + workload-cursor image.
    pub checkpoint: Vec<u8>,
}

/// Runs one golden workload to completion at `shards` simulation shards
/// with the chunked driver, returning the full evidence bundle.
///
/// `plan` and `background` select the hostile variants: a fault plan to
/// execute and an optional contention background load. `shards == 1`
/// takes the sequential staged path exactly — it is the reference the
/// sharded runs are compared against.
pub fn observe_golden(
    g: &GoldenSpec,
    shards: usize,
    plan: &FaultPlan,
    background: Option<f64>,
) -> RunEvidence {
    let (mut sys, mut wl, mut m5) = crate::checkpoint::golden_parts_faulted(g, plan, background);
    sys.set_sim_shards(shards);
    let mut run = ChunkedRun::begin(&mut sys, &mut m5);
    crate::checkpoint::drive_to(&mut sys, &mut m5, &mut run, &mut wl, g.accesses);
    let checkpoint = crate::checkpoint::capture(&mut sys, &m5, &run, &wl).encode();
    let report = run.finish(&mut sys, &m5);
    sys.telemetry_mut().flush();
    let snapshot = crate::golden::render(g.name, &sys.telemetry().snapshot());
    RunEvidence {
        snapshot,
        report: format!("{report:?}"),
        checkpoint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::GOLDENS;

    /// Smoke: a short sharded golden run completes and its evidence
    /// matches the sequential reference. The full matrix lives in
    /// `tests/sharded_determinism.rs`.
    #[test]
    fn sharded_golden_run_matches_sequential_reference() {
        let g = GoldenSpec {
            accesses: 20_000,
            ..GOLDENS[0]
        };
        let reference = observe_golden(&g, 1, &FaultPlan::none(), None);
        let sharded = observe_golden(&g, 4, &FaultPlan::none(), None);
        assert_eq!(sharded.report, reference.report);
        assert_eq!(sharded.snapshot, reference.snapshot);
        assert_eq!(sharded.checkpoint, reference.checkpoint);
    }
}
