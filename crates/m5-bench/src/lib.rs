//! # m5-bench — shared harness utilities for the figure/table benches
//!
//! Each table and figure of the paper's evaluation has a `harness = false`
//! bench target under `benches/` that regenerates it; this library holds
//! the protocol pieces they share:
//!
//! * [`standard_system`] — the scaled machine with per-benchmark DDR caps
//!   (the paper limits DDR to ~50 % of each footprint),
//! * [`run_ratio_protocol`] — the §4.1 S1–S5 protocol: record-only
//!   hot-page logs scored against PAC's exact counts,
//! * [`epoch_ratio`] — the §7.1 trace-driven tracker-precision metric
//!   (per-query-epoch top-K overlap, weighted by true counts),
//! * [`collect_trace`] — cache-filtered DRAM trace capture (the Pin +
//!   Ramulator pipeline stand-in),
//! * [`results`] — optional machine-readable CSV emission (`--csv DIR`),
//!   and
//! * table printing helpers shared by every harness.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod crash_sweep;
pub mod golden;
pub mod loaded;
pub mod parallel;
pub mod pipeline;
pub mod results;
pub mod sharded;
pub mod soak;

use cxl_sim::prelude::*;
use cxl_sim::system::Region;
use cxl_sim::trace::{TraceCapture, TraceRecord};
use m5_profilers::pac::Pac;
use m5_trackers::topk::TopKAlgorithm;
use m5_workloads::registry::{Benchmark, WorkloadSpec};
use std::collections::HashMap;

/// Default per-benchmark access budget for full-system figure runs.
///
/// Sized so that (a) sweep-style workloads complete several full passes
/// (their re-reference periods are ~2–6 M accesses), and (b) page
/// migration has time to amortize (§7.2: a move pays for itself after
/// ~318 saved CXL accesses).
pub const DEFAULT_ACCESSES: u64 = 24_000_000;

/// Builds the standard scaled machine for `spec`: CXL sized to hold the
/// whole footprint, DDR capped at half of it (§6: "roughly 50 % of the
/// pages can be migrated"), and allocates the workload region on CXL.
pub fn standard_system(spec: &WorkloadSpec) -> (System, Region) {
    standard_system_with_faults(spec, &cxl_sim::faults::FaultPlan::none())
}

/// [`standard_system`] executing a fault plan — the chaos-harness entry
/// point. `FaultPlan::none()` reproduces the fault-free machine exactly.
pub fn standard_system_with_faults(
    spec: &WorkloadSpec,
    plan: &cxl_sim::faults::FaultPlan,
) -> (System, Region) {
    let config = SystemConfig::scaled_default()
        .with_cxl_frames(spec.footprint_pages + 1024)
        .with_ddr_frames(spec.footprint_pages / 2);
    let mut sys = System::with_fault_plan(config, plan);
    let region = sys
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .expect("CXL sized to fit the footprint");
    (sys, region)
}

/// [`standard_system`] with the contention-aware timing model enabled:
/// default link parameters plus `background` offered load (as a fraction
/// of the CXL link's peak) from other tenants sharing the link. The
/// offered-load axis of the loaded-latency sweep.
pub fn standard_contended_system(spec: &WorkloadSpec, background: f64) -> (System, Region) {
    standard_contended_system_with_faults(spec, &cxl_sim::faults::FaultPlan::none(), background)
}

/// [`standard_contended_system`] executing a fault plan.
pub fn standard_contended_system_with_faults(
    spec: &WorkloadSpec,
    plan: &cxl_sim::faults::FaultPlan,
    background: f64,
) -> (System, Region) {
    let config = SystemConfig::scaled_default()
        .with_cxl_frames(spec.footprint_pages + 1024)
        .with_ddr_frames(spec.footprint_pages / 2)
        .with_contention(ContentionConfig::enabled_default().with_cxl_background(background));
    let mut sys = System::with_fault_plan(config, plan);
    let region = sys
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .expect("CXL sized to fit the footprint");
    (sys, region)
}

/// Attaches a PAC covering the CXL node and returns its handle.
pub fn attach_pac(sys: &mut System) -> DeviceHandle {
    let pac = Pac::new(m5_profilers::pac::PacConfig::covering_cxl(sys));
    sys.attach_device(pac)
}

/// The paper's hot-page quota: K ≈ footprint/16 (§4.1 sets K up to 128K
/// pages ≈ 1/16 of the 8 GB footprints).
pub fn k_for(spec: &WorkloadSpec) -> usize {
    (spec.footprint_pages / 16).max(16) as usize
}

/// §4.1 protocol result: the average access-count ratio of a solution's
/// identified hot pages versus PAC's true top-K, sampled at several
/// execution points.
#[derive(Clone, Debug)]
pub struct AccessCountRatio {
    /// Per-execution-point ratios.
    pub points: Vec<f64>,
}

impl AccessCountRatio {
    /// Mean over execution points.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().sum::<f64>() / self.points.len() as f64
    }

    /// Minimum over execution points.
    pub fn min(&self) -> f64 {
        self.points.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum over execution points.
    pub fn max(&self) -> f64 {
        self.points.iter().copied().fold(0.0, f64::max)
    }
}

/// Computes one S4/S5 ratio: the summed true counts of the identified
/// pages (first `k`) over the summed counts of PAC's top-`k_eff`, where
/// `k_eff` is the number of pages actually collected (S5 compares equal
/// numbers of pages).
pub fn ratio_against_pac(
    pac: &Pac,
    identified: impl IntoIterator<Item = cxl_sim::addr::Pfn>,
    k: usize,
) -> f64 {
    let ident: Vec<_> = identified.into_iter().take(k).collect();
    if ident.is_empty() {
        return 0.0;
    }
    let k_eff = ident.len();
    let num = pac.sum_counts_of(ident) as f64;
    let den = pac.top_k_sum(k_eff) as f64;
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Runs `daemon` (expected to be record-only) for `accesses` total,
/// computing the access-count ratio at `points` evenly spaced execution
/// points. `log_pfns` extracts the solution's current hot-page list.
// The S1–S5 protocol genuinely has this many independent knobs; bundling
// them into a one-off struct would only move the argument list.
#[allow(clippy::too_many_arguments)]
pub fn run_ratio_protocol<D, F>(
    sys: &mut System,
    workload: &mut dyn AccessStream,
    daemon: &mut D,
    pac_handle: DeviceHandle,
    k: usize,
    accesses: u64,
    points: usize,
    mut log_pfns: F,
) -> AccessCountRatio
where
    D: cxl_sim::system::MigrationDaemon,
    F: FnMut(&D) -> Vec<cxl_sim::addr::Pfn>,
{
    let chunk = accesses / points as u64;
    let mut out = Vec::with_capacity(points);
    for _ in 0..points {
        let _ = cxl_sim::system::run(sys, workload, daemon, chunk);
        let pac: &Pac = sys.device(pac_handle).expect("PAC attached");
        out.push(ratio_against_pac(pac, log_pfns(daemon), k));
    }
    AccessCountRatio { points: out }
}

/// Captures a cache-filtered, time-stamped CXL DRAM trace of `limit`
/// records by running the workload with no migration — the stand-in for
/// the paper's Pin + Ramulator pipeline (§7.1).
pub fn collect_trace(
    spec: &WorkloadSpec,
    target_accesses: u64,
    limit: usize,
    seed: u64,
) -> Vec<TraceRecord> {
    let (mut sys, region) = standard_system(spec);
    let handle = sys.attach_device(TraceCapture::with_limit(limit));
    let mut wl = spec.build(region.base, target_accesses, seed);
    let _ = cxl_sim::system::run(
        &mut sys,
        &mut wl,
        &mut cxl_sim::system::NoMigration,
        u64::MAX,
    );
    let cap: &TraceCapture = sys.device(handle).expect("capture attached");
    cap.records().to_vec()
}

/// §7.1 tracker-precision metric: replay a trace into `tracker`, querying
/// every `period`; each epoch's top-`k` is scored by true in-epoch counts
/// against the exact in-epoch top-`k`. Returns the per-epoch average.
///
/// `key` maps a trace record's cache-line address to the tracked key
/// (identity for HWT, the PFN for HPT).
pub fn epoch_ratio(
    records: &[TraceRecord],
    key: impl Fn(cxl_sim::addr::CacheLineAddr) -> u64,
    tracker: &mut dyn TopKAlgorithm,
    k: usize,
    period: Nanos,
) -> f64 {
    let mut truth: HashMap<u64, u64> = HashMap::new();
    let mut epoch_end = match records.first() {
        Some(r) => r.ts + period,
        None => return 0.0,
    };
    let mut ratios: Vec<f64> = Vec::new();
    fn close_epoch(
        truth: &mut HashMap<u64, u64>,
        tracker: &mut dyn TopKAlgorithm,
        k: usize,
        ratios: &mut Vec<f64>,
    ) {
        if truth.is_empty() {
            return;
        }
        let picked = tracker.drain_top_k();
        let mut exact: Vec<u64> = truth.values().copied().collect();
        exact.sort_unstable_by(|a, b| b.cmp(a));
        let den: u64 = exact.iter().take(k).sum();
        let num: u64 = picked
            .iter()
            .take(k)
            .map(|(addr, _)| truth.get(addr).copied().unwrap_or(0))
            .sum();
        if den > 0 {
            ratios.push(num as f64 / den as f64);
        }
        truth.clear();
    }
    for r in records {
        while r.ts >= epoch_end {
            close_epoch(&mut truth, tracker, k, &mut ratios);
            epoch_end += period;
        }
        let key_val = key(r.line);
        tracker.record(key_val);
        *truth.entry(key_val).or_default() += 1;
    }
    close_epoch(&mut truth, tracker, k, &mut ratios);
    if ratios.is_empty() {
        0.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

/// Prints a figure header in a consistent style.
pub fn banner(id: &str, caption: &str) {
    println!("==============================================================");
    println!("{id}: {caption}");
    println!("==============================================================");
}

/// Geometric mean of positive values (the cross-benchmark mean for
/// normalized performance).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (sum / values.len() as f64).exp()
}

/// Parses the standard bench CLI: `--quick` shrinks access budgets for CI
/// smoke runs; `--accesses N` overrides explicitly.
pub fn access_budget_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--accesses") {
        if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
            return n;
        }
    }
    if args.iter().any(|a| a == "--quick") {
        DEFAULT_ACCESSES / 8
    } else {
        DEFAULT_ACCESSES
    }
}

/// The benchmark list shared by the full-system figures.
pub fn main_benchmarks() -> [Benchmark; 12] {
    Benchmark::MAIN_TWELVE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_values() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn k_for_is_a_sixteenth() {
        let spec = Benchmark::Mcf.spec();
        assert_eq!(k_for(&spec), (spec.footprint_pages / 16) as usize);
    }

    #[test]
    fn standard_system_halves_ddr() {
        let spec = Benchmark::Mcf.spec();
        let (sys, region) = standard_system(&spec);
        assert_eq!(region.pages, spec.footprint_pages);
        assert_eq!(sys.config().ddr.capacity_frames, spec.footprint_pages / 2);
        assert_eq!(sys.nr_pages(NodeId::CXL), spec.footprint_pages);
    }

    #[test]
    fn epoch_ratio_is_one_for_a_perfect_tracker() {
        use cxl_sim::addr::CacheLineAddr;
        use m5_trackers::topk::CmSketchTopK;
        let records: Vec<cxl_sim::trace::TraceRecord> = (0..1000u64)
            .map(|i| cxl_sim::trace::TraceRecord {
                line: CacheLineAddr(i % 4),
                is_write: false,
                ts: Nanos(i * 10),
            })
            .collect();
        let mut tracker = CmSketchTopK::with_total_entries(4, 4096, 4, 1);
        let r = epoch_ratio(&records, |l| l.0, &mut tracker, 4, Nanos::from_micros(2));
        assert!(r > 0.99, "ratio {r}");
    }
}
