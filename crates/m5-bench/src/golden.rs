//! Golden-trace differential harness.
//!
//! A golden run drives a fixed workload, seed, and access budget through
//! the standard scaled machine with the M5 manager and an enabled
//! telemetry bus, then renders the resulting [`MetricsSnapshot`] into a
//! canonical, line-oriented text form. Checked-in goldens (under
//! `crates/m5-bench/goldens/`) are diffed against fresh runs with
//! per-metric tolerances, so any change to the simulator's accounting, the
//! manager's behaviour, or the telemetry plumbing shows up as a readable
//! metric-level diff rather than a silent drift.
//!
//! Regenerate after an intentional behaviour change with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p m5-bench --test golden
//! ```
//!
//! Set `M5_GOLDEN_ARTIFACTS=<dir>` to also write each run's JSONL event
//! trace and human-readable metrics summary there (CI uploads these on
//! failure).

use crate::pipeline::run_overlapped;
use cxl_sim::prelude::*;
use m5_core::manager::{M5Config, M5Manager};
use m5_workloads::registry::Benchmark;
use std::fmt::Write as _;
use std::path::Path;

/// One golden workload: a benchmark pinned to a seed and access budget.
#[derive(Clone, Copy, Debug)]
pub struct GoldenSpec {
    /// Short name; also the golden file stem (`golden_<name>.txt`).
    pub name: &'static str,
    /// The workload.
    pub benchmark: Benchmark,
    /// Trace seed.
    pub seed: u64,
    /// Access budget (sized for seconds, not minutes, of runtime).
    pub accesses: u64,
}

/// The three golden workloads: a graph kernel, a key-value store, and a
/// SPEC-like scientific workload — one per workload family the paper
/// evaluates.
pub const GOLDENS: [GoldenSpec; 3] = [
    GoldenSpec {
        name: "graph",
        benchmark: Benchmark::Pr,
        seed: 42,
        accesses: 250_000,
    },
    GoldenSpec {
        name: "kv",
        benchmark: Benchmark::Redis,
        seed: 42,
        accesses: 250_000,
    },
    GoldenSpec {
        name: "spec",
        benchmark: Benchmark::Mcf,
        seed: 42,
        accesses: 250_000,
    },
];

/// Runs one golden workload to completion, returning the telemetry
/// snapshot and the run report. When `jsonl` is given, the full event
/// stream and final snapshot are written there as JSONL.
pub fn run_golden(g: &GoldenSpec, jsonl: Option<&Path>) -> (MetricsSnapshot, RunReport) {
    let spec = g.benchmark.spec();
    let (mut sys, region) = crate::standard_system(&spec);
    let mut t = Telemetry::enabled();
    if let Some(path) = jsonl {
        if let Ok(f) = std::fs::File::create(path) {
            t.add_sink(Box::new(JsonlSink::new(f)));
        }
    }
    sys.install_telemetry(t);
    let mut wl = spec.build(region.base, g.accesses, g.seed);
    let mut m5 = M5Manager::new(M5Config::default());
    let report = run_overlapped(&mut sys, &mut wl, &mut m5, g.accesses);
    sys.telemetry_mut().flush();
    (sys.telemetry().snapshot(), report)
}

/// Renders a snapshot into the canonical golden text form: one line per
/// metric, sorted (the snapshot already is), floats at fixed precision so
/// the text is byte-stable for identical runs.
pub fn render(name: &str, snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# golden metrics snapshot: {name}");
    let _ = writeln!(
        out,
        "# regenerate: UPDATE_GOLDENS=1 cargo test -p m5-bench --test golden"
    );
    for (k, v) in &snap.counters {
        let _ = writeln!(out, "counter {k} {v}");
    }
    for (k, v) in &snap.gauges {
        let _ = writeln!(out, "gauge {k} {v:.3}");
    }
    for (k, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "hist {k} {} {} {} {} {}",
            h.count, h.sum, h.max, h.p50, h.p99
        );
    }
    out
}

/// A parsed golden line: metric kind, key, and numeric fields.
type Lines = std::collections::BTreeMap<String, (String, Vec<f64>)>;

fn parse(text: &str) -> Lines {
    let mut out = Lines::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(kind), Some(key)) = (it.next(), it.next()) else {
            continue;
        };
        let fields: Vec<f64> = it.filter_map(|t| t.parse().ok()).collect();
        out.insert(format!("{kind} {key}"), (kind.to_string(), fields));
    }
    out
}

/// Relative tolerance for one field of one metric. Counts are exact (the
/// simulator is deterministic); time- and rate-derived values get 1%
/// headroom so a cost-model tweak elsewhere doesn't churn every golden.
fn rel_tolerance(kind: &str, key: &str, field: usize) -> f64 {
    match kind {
        "counter" if key.starts_with("sim.kernel.ns") => 0.01,
        "counter" => 0.0,
        "gauge" => 0.01,
        // hist fields: count sum max p50 p99 — count exact, rest 1%.
        "hist" if field == 0 => 0.0,
        _ => 0.01,
    }
}

fn within(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true;
    }
    (a - b).abs() <= tol * a.abs().max(b.abs())
}

/// Diffs a golden text against a freshly rendered one, returning one
/// human-readable line per out-of-tolerance metric (empty = match).
pub fn diff(expected: &str, actual: &str) -> Vec<String> {
    let e = parse(expected);
    let a = parse(actual);
    let mut out = Vec::new();
    for (key, (kind, ev)) in &e {
        match a.get(key) {
            None => out.push(format!("missing from run: {key}")),
            Some((_, av)) => {
                if av.len() != ev.len() {
                    out.push(format!(
                        "{key}: field count {} != golden {}",
                        av.len(),
                        ev.len()
                    ));
                    continue;
                }
                for (i, (&want, &got)) in ev.iter().zip(av).enumerate() {
                    let tol = rel_tolerance(kind, key.split(' ').nth(1).unwrap_or(""), i);
                    if !within(want, got, tol) {
                        out.push(format!(
                            "{key} field {i}: got {got}, golden {want} (tol {:.0}%)",
                            tol * 100.0
                        ));
                    }
                }
            }
        }
    }
    for key in a.keys() {
        if !e.contains_key(key) {
            out.push(format!("new metric not in golden: {key}"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip_and_exact_diff() {
        let text =
            "# comment\ncounter sim.llc{hit} 10\ngauge bw{ddr} 2.500\nhist lat{} 4 100 60 32 60\n";
        let p = parse(text);
        assert_eq!(p.len(), 3);
        assert_eq!(p["counter sim.llc{hit}"].1, vec![10.0]);
        assert!(diff(text, text).is_empty());
    }

    #[test]
    fn diff_flags_out_of_tolerance_and_missing_metrics() {
        let golden = "counter sim.accesses{read} 100\ncounter sim.kernel.ns{migration} 1000\n";
        // Exact counter off by one: flagged. Kernel ns within 1%: not.
        let run = "counter sim.accesses{read} 101\ncounter sim.kernel.ns{migration} 1005\ncounter extra{} 1\n";
        let d = diff(golden, run);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|l| l.contains("sim.accesses")));
        assert!(d.iter().any(|l| l.contains("new metric")));
        // 2% off on kernel ns is out of tolerance.
        let run2 = "counter sim.accesses{read} 100\ncounter sim.kernel.ns{migration} 1020\n";
        assert_eq!(diff(golden, run2).len(), 1);
    }
}
