//! Chaos-soak harness for the memory RAS subsystem.
//!
//! Each **campaign** runs a skewed demand workload through the full M5
//! manager on a small two-tier machine while a seeded fault plan abuses
//! the CXL node: correctable-error bursts, link retrains, poisoned lines,
//! controller resets — and always at least one
//! [`DeviceFault::HotRemovePrepare`], so every campaign exercises a live
//! node evacuation end to end. After the run the campaign is judged on
//! the RAS contract:
//!
//! * the access budget completes — demand traffic never waits behind an
//!   evacuation (the drain is bounded per manager epoch),
//! * [`cxl_sim::system::System::check_invariants`] is clean,
//! * **zero pages lost or double-mapped**: the region's pages are all
//!   still mapped, split exactly between the two nodes,
//! * the evacuation concludes (the node reaches `Offline`) and its
//!   [`EvacuationReport`] is consistent with the page table, and
//! * the drain was genuinely incremental: pages moved never exceed
//!   `drain epochs × per-epoch budget`.
//!
//! Campaigns share nothing, so the parallel driver fans them across the
//! vendored work queue and merges in input order — byte-identical to the
//! sequential reference (`tests/soak.rs` asserts this). The `soak` binary
//! (`cargo run --release -p m5-bench --bin soak`) runs the default
//! campaign set; `--long` scales it up for nightly soaking.

use crate::parallel::par_indexed;
use crate::pipeline::run_overlapped;
use cxl_sim::faults::{DeviceFault, FaultKind, FaultPlan};
use cxl_sim::memory::NodeId;
use cxl_sim::prelude::*;
use cxl_sim::ras::{EvacuationReport, NodeHealth, RasConfig};
use m5_core::manager::{M5Config, M5Manager};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Pages in the soak region (all allocated on CXL).
pub const SOAK_PAGES: u64 = 512;
/// Hot subset receiving 90 % of the demand traffic.
pub const SOAK_HOT: u64 = 16;
/// CXL node frames (region plus headroom for shadow frames).
pub const SOAK_CXL_FRAMES: u64 = 1024;
/// Per-epoch drain budget the soak manager runs with (reversed promotion
/// budget; also bounds how long one epoch can stall demand traffic).
pub const SOAK_DRAIN_BUDGET: usize = 64;
/// Fault-plan horizon for chaos campaigns: early enough that every armed
/// fault fires well inside the run.
pub const SOAK_HORIZON: Nanos = Nanos(2_000_000);

/// The fault scenario a campaign runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoakScenario {
    /// [`FaultPlan::chaos`]: a seeded mix of every fault class (always
    /// including a hot-remove, so the node evacuates mid-run).
    Chaos,
    /// A clean-room hot-remove with no other faults: the evacuation must
    /// fully drain the node before the deadline.
    Evacuate,
    /// Hot-remove with the survivor deliberately too small: the drain must
    /// stall gracefully (typed capacity exhaustion, not a panic) and the
    /// node must still conclude `Offline` at the deadline with residual
    /// pages that remain accessible.
    Squeeze,
}

impl SoakScenario {
    /// Stable name used in campaign labels and artifacts.
    pub const fn label(self) -> &'static str {
        match self {
            SoakScenario::Chaos => "chaos",
            SoakScenario::Evacuate => "evacuate",
            SoakScenario::Squeeze => "squeeze",
        }
    }
}

/// One soak campaign: a scenario pinned to a seed and budget.
#[derive(Clone, Copy, Debug)]
pub struct SoakSpec {
    /// The fault scenario.
    pub scenario: SoakScenario,
    /// Workload and fault-plan seed.
    pub seed: u64,
    /// Demand-access budget.
    pub accesses: u64,
    /// Survivor (DDR) frames.
    pub ddr_frames: u64,
}

impl SoakSpec {
    /// The campaign's display name, e.g. `chaos-3`.
    pub fn name(&self) -> String {
        format!("{}-{}", self.scenario.label(), self.seed)
    }

    /// The evacuation deadline the campaign's machine runs with. Draining
    /// one page bills real migration time (~54 µs), so a full 512-page
    /// drain inherently costs ~30 ms; chaos and clean-room campaigns get a
    /// deadline proportionate to the node size, while the squeeze campaign
    /// keeps the tight default so its stalled drain is forced to conclude
    /// within the run.
    fn evac_deadline(&self) -> Nanos {
        match self.scenario {
            SoakScenario::Chaos | SoakScenario::Evacuate => Nanos::from_millis(150),
            SoakScenario::Squeeze => RasConfig::default().evac_deadline,
        }
    }

    fn plan(&self) -> FaultPlan {
        match self.scenario {
            SoakScenario::Chaos => FaultPlan::chaos(self.seed, SOAK_HORIZON),
            SoakScenario::Evacuate | SoakScenario::Squeeze => FaultPlan::none().with(
                Nanos(1_000_000),
                FaultKind::Device(DeviceFault::HotRemovePrepare),
            ),
        }
    }
}

/// The default campaign set: eight chaos seeds, two clean evacuations, and
/// one squeezed survivor. `long` multiplies the chaos seeds and budgets
/// for nightly soaking.
pub fn default_campaigns(long: bool) -> Vec<SoakSpec> {
    let (chaos_seeds, accesses) = if long { (32, 1_000_000) } else { (8, 400_000) };
    let mut specs: Vec<SoakSpec> = (0..chaos_seeds)
        .map(|seed| SoakSpec {
            scenario: SoakScenario::Chaos,
            seed,
            accesses,
            ddr_frames: 1024,
        })
        .collect();
    for seed in 0..2 {
        specs.push(SoakSpec {
            scenario: SoakScenario::Evacuate,
            seed,
            accesses,
            ddr_frames: 1024,
        });
    }
    // The squeeze campaign must outlive the evacuation deadline (50 ms of
    // simulated time) so the stalled drain is forced to conclude.
    specs.push(SoakSpec {
        scenario: SoakScenario::Squeeze,
        seed: 0,
        accesses: 600_000,
        ddr_frames: 256,
    });
    specs
}

/// The skewed demand stream: 90 % of accesses hit the hot subset.
struct SkewedStream {
    base: VirtAddr,
    pages: u64,
    hot: u64,
    rng: SmallRng,
    remaining: u64,
}

impl AccessStream for SkewedStream {
    fn next_access(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let page = if self.rng.gen::<f64>() < 0.9 {
            self.rng.gen_range(0..self.hot)
        } else {
            self.rng.gen_range(self.hot..self.pages)
        };
        let off = self.rng.gen_range(0u64..64) * 64;
        Some(Access::read(self.base.offset(page * 4096 + off)))
    }
}

impl crate::checkpoint::StreamCheckpoint for SkewedStream {
    // pages/hot are campaign constants the restoring side rebuilds; the
    // region base, RNG position, and remaining budget are cursor state
    // (the base so a resuming stream needs no region handle of its own).
    fn save_cursor(&self, w: &mut cxl_sim::checkpoint::StateWriter) {
        w.put_u64(self.base.0);
        w.put_u64_slice(&self.rng.state());
        w.put_u64(self.remaining);
    }

    fn load_cursor(
        &mut self,
        r: &mut cxl_sim::checkpoint::StateReader<'_>,
    ) -> Result<(), cxl_sim::checkpoint::CodecError> {
        self.base = VirtAddr(r.get_u64()?);
        let raw = r.get_u64_vec()?;
        let state: [u64; 4] =
            raw.as_slice()
                .try_into()
                .map_err(|_| cxl_sim::checkpoint::CodecError::BadValue {
                    what: "soak rng state length",
                    value: raw.len() as u64,
                })?;
        self.rng = SmallRng::from_state(state);
        self.remaining = r.get_u64()?;
        Ok(())
    }
}

/// Everything observable about one finished campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Campaign name (`scenario-seed`).
    pub name: String,
    /// Accesses the run completed (must equal the budget).
    pub accesses: u64,
    /// Faults the injector delivered.
    pub faults_injected: u64,
    /// CXL node health at exit.
    pub health: NodeHealth,
    /// Correctable errors recorded on the CXL node.
    pub total_ce: u64,
    /// Frames permanently retired by predictive offlining.
    pub frames_offlined: u64,
    /// Region pages mapped on DDR at exit.
    pub mapped_ddr: u64,
    /// Region pages mapped on CXL at exit.
    pub mapped_cxl: u64,
    /// Manager epochs that performed a bounded evacuation drain.
    pub drain_epochs: u64,
    /// The concluded evacuation, if the node reached `Offline`.
    pub evacuation: Option<EvacuationReport>,
    /// Degradation notes recorded during the run.
    pub degraded: Vec<String>,
    /// Invariant violations at exit (must be empty).
    pub violations: Vec<String>,
}

/// The campaign machine configuration for `spec`.
fn campaign_config(spec: &SoakSpec) -> SystemConfig {
    SystemConfig::small()
        .with_cxl_frames(SOAK_CXL_FRAMES)
        .with_ddr_frames(spec.ddr_frames)
        .with_ras(RasConfig {
            evac_deadline: spec.evac_deadline(),
            ..RasConfig::default()
        })
}

/// The campaign demand stream bound to `base`.
fn campaign_stream(spec: &SoakSpec, base: VirtAddr) -> SkewedStream {
    SkewedStream {
        base,
        pages: SOAK_PAGES,
        hot: SOAK_HOT,
        rng: SmallRng::seed_from_u64(spec.seed ^ 0x50a1),
        remaining: spec.accesses,
    }
}

/// The campaign manager configuration.
fn campaign_m5_config() -> M5Config {
    M5Config {
        promote_batch: SOAK_DRAIN_BUDGET,
        ..M5Config::default()
    }
}

/// Judges a finished campaign run against the end state of its machine.
fn audit(spec: &SoakSpec, sys: &mut System, m5: &M5Manager, report: &RunReport) -> CampaignReport {
    // A controller reset striking after the manager's last epoch leaves
    // the engine fenced; replay the journal before auditing invariants
    // (mirrors the crash-sweep harness).
    if sys.needs_recovery() {
        sys.recover();
    }
    CampaignReport {
        name: spec.name(),
        accesses: report.accesses,
        faults_injected: report.health.faults_injected,
        health: sys.ras().health(NodeId::Cxl),
        total_ce: sys.ras().total_ce(NodeId::Cxl),
        frames_offlined: sys.offlined_frames(NodeId::Cxl),
        mapped_ddr: sys.nr_pages(NodeId::Ddr),
        mapped_cxl: sys.nr_pages(NodeId::Cxl),
        drain_epochs: m5.ras_drain_epochs(),
        evacuation: sys.ras().evacuation_report(NodeId::Cxl).copied(),
        degraded: report.health.degraded.clone(),
        violations: sys.check_invariants(),
    }
}

/// Runs one campaign to completion and audits the end state.
pub fn run_campaign(spec: SoakSpec) -> CampaignReport {
    run_campaign_sharded(spec, 1)
}

/// [`run_campaign`] with the campaign machine split into `shards`
/// simulation shards. Byte-identical to the sequential campaign — the
/// sharded staged engine's contract — so the soak verdict and artifact
/// line cannot depend on the shard count.
pub fn run_campaign_sharded(spec: SoakSpec, shards: usize) -> CampaignReport {
    let plan = spec.plan();
    let mut sys = System::with_fault_plan(campaign_config(&spec), &plan);
    sys.set_sim_shards(shards);
    let region = sys
        .alloc_region(SOAK_PAGES, Placement::AllOnCxl)
        .expect("CXL sized to fit the soak region");
    let mut wl = campaign_stream(&spec, region.base);
    let mut m5 = M5Manager::new(campaign_m5_config());
    let report = run_overlapped(&mut sys, &mut wl, &mut m5, spec.accesses);
    audit(&spec, &mut sys, &m5, &report)
}

/// Runs a fresh campaign to `upto` accesses with the sequential chunked
/// driver and commits a run checkpoint at that point — the "process was
/// killed mid-campaign" setup for [`run_campaign_resumable`].
pub fn checkpoint_campaign(spec: SoakSpec, ckpt: &std::path::Path, upto: u64) {
    use crate::checkpoint as ck;
    let plan = spec.plan();
    let mut sys = System::with_fault_plan(campaign_config(&spec), &plan);
    let region = sys
        .alloc_region(SOAK_PAGES, Placement::AllOnCxl)
        .expect("CXL sized to fit the soak region");
    let mut wl = campaign_stream(&spec, region.base);
    let mut m5 = M5Manager::new(campaign_m5_config());
    let mut run = cxl_sim::system::ChunkedRun::begin(&mut sys, &mut m5);
    ck::drive_to(
        &mut sys,
        &mut m5,
        &mut run,
        &mut wl,
        upto.min(spec.accesses),
    );
    let cp = ck::capture(&mut sys, &m5, &run, &wl);
    ck::commit(&mut sys, &cp, ckpt).expect("campaign checkpoint io");
}

/// Runs one campaign with the sequential chunked driver, committing a
/// run checkpoint to `ckpt` every `every` accesses. When `ckpt` already
/// holds a valid image (possibly via its `.prev` fallback) the campaign
/// resumes from it instead of starting over — the engine behind
/// `soak --resume`. The chunked driver is byte-identical to the
/// overlapped one, so an uninterrupted resumable campaign reports exactly
/// what [`run_campaign`] does.
pub fn run_campaign_resumable(
    spec: SoakSpec,
    ckpt: &std::path::Path,
    every: u64,
) -> CampaignReport {
    run_campaign_resumable_sharded(spec, ckpt, every, 1)
}

/// [`run_campaign_resumable`] at `shards` simulation shards. The shard
/// count is a runtime knob that never enters the checkpoint, so a
/// campaign checkpointed at one count legally resumes at another — the
/// outcome is byte-identical either way.
pub fn run_campaign_resumable_sharded(
    spec: SoakSpec,
    ckpt: &std::path::Path,
    every: u64,
    shards: usize,
) -> CampaignReport {
    use crate::checkpoint as ck;
    let plan = spec.plan();
    let config = campaign_config(&spec);
    let resumed = cxl_sim::checkpoint::Checkpoint::load(ckpt)
        .ok()
        .and_then(|loaded| {
            // Placeholder base/cursor: load_cursor rebinds both.
            let mut wl = campaign_stream(&spec, VirtAddr(0));
            ck::resume(
                &loaded.checkpoint,
                config.clone(),
                &plan,
                campaign_m5_config(),
                &mut wl,
            )
            .ok()
            .map(|r| (r.sys, r.m5, r.run, wl))
        });
    let (mut sys, mut m5, mut run, mut wl) = match resumed {
        Some(parts) => parts,
        None => {
            let mut sys = System::with_fault_plan(config, &plan);
            let region = sys
                .alloc_region(SOAK_PAGES, Placement::AllOnCxl)
                .expect("CXL sized to fit the soak region");
            let wl = campaign_stream(&spec, region.base);
            let mut m5 = M5Manager::new(campaign_m5_config());
            let run = cxl_sim::system::ChunkedRun::begin(&mut sys, &mut m5);
            (sys, m5, run, wl)
        }
    };
    sys.set_sim_shards(shards);
    ck::drive_with_checkpoints(
        &mut sys,
        &mut m5,
        &mut run,
        &mut wl,
        spec.accesses,
        every,
        ckpt,
    )
    .expect("campaign checkpoint io");
    let report = run.finish(&mut sys, &m5);
    audit(&spec, &mut sys, &m5, &report)
}

impl CampaignReport {
    /// Violations of the soak contract for this campaign (empty = pass).
    pub fn failures(&self, spec: &SoakSpec) -> Vec<String> {
        let mut out = Vec::new();
        let mut fail = |msg: String| out.push(format!("{}: {msg}", self.name));
        if self.accesses != spec.accesses {
            fail(format!(
                "completed {} of {} accesses — evacuation blocked demand traffic",
                self.accesses, spec.accesses
            ));
        }
        if !self.violations.is_empty() {
            fail(format!(
                "invariants violated: {}",
                self.violations.join("; ")
            ));
        }
        if self.mapped_ddr + self.mapped_cxl != SOAK_PAGES {
            fail(format!(
                "page accounting broke: {} on DDR + {} on CXL != {} — pages lost or double-mapped",
                self.mapped_ddr, self.mapped_cxl, SOAK_PAGES
            ));
        }
        if self.faults_injected == 0 {
            fail("no faults fired — the campaign was vacuous".into());
        }
        match &self.evacuation {
            None => fail(format!(
                "evacuation never concluded (health {} at exit)",
                self.health
            )),
            Some(evac) => {
                if self.health != NodeHealth::Offline {
                    fail(format!("evacuated node not offline: {}", self.health));
                }
                if evac.residual != self.mapped_cxl {
                    fail(format!(
                        "report residual {} != {} pages still mapped on CXL",
                        evac.residual, self.mapped_cxl
                    ));
                }
                if evac.pages_moved == 0 {
                    fail("evacuation drained nothing".into());
                }
                if self.drain_epochs < 2 {
                    fail(format!(
                        "drain finished in {} epoch(s) — not incremental",
                        self.drain_epochs
                    ));
                }
                if evac.pages_moved > self.drain_epochs * SOAK_DRAIN_BUDGET as u64 {
                    fail(format!(
                        "{} pages drained in {} epochs exceeds the {}-page epoch budget",
                        evac.pages_moved, self.drain_epochs, SOAK_DRAIN_BUDGET
                    ));
                }
                match spec.scenario {
                    // A full-size survivor must absorb the whole node
                    // inside the deadline.
                    SoakScenario::Chaos | SoakScenario::Evacuate => {
                        if evac.residual != 0 {
                            fail(format!("{} pages stranded on the node", evac.residual));
                        }
                        if !evac.deadline_met {
                            fail("drain missed the evacuation deadline".into());
                        }
                    }
                    // A squeezed survivor must stall *gracefully*: typed
                    // exhaustion, deadline-expiry conclusion, residual
                    // pages still mapped (and counted above).
                    SoakScenario::Squeeze => {
                        if evac.residual == 0 {
                            fail("squeezed survivor absorbed everything — vacuous".into());
                        }
                        if evac.deadline_met {
                            fail("squeezed drain claims it met the deadline".into());
                        }
                        if !self
                            .degraded
                            .iter()
                            .any(|d| d.contains("capacity exhausted"))
                        {
                            fail("no capacity-exhaustion degradation note".into());
                        }
                    }
                }
            }
        }
        out
    }

    fn artifact_line(&self) -> String {
        format!(
            "campaign {}: accesses={} faults={} health={} ce={} offlined={} \
             mapped=ddr:{}+cxl:{} drain_epochs={} evac={} violations={}\n",
            self.name,
            self.accesses,
            self.faults_injected,
            self.health,
            self.total_ce,
            self.frames_offlined,
            self.mapped_ddr,
            self.mapped_cxl,
            self.drain_epochs,
            self.evacuation
                .map(|e| format!(
                    "moved:{}+residual:{},deadline_met:{},t:{}..{}",
                    e.pages_moved, e.residual, e.deadline_met, e.started.0, e.finished.0
                ))
                .unwrap_or_else(|| "none".into()),
            self.violations.join("; "),
        )
    }
}

/// Renders the canonical line-oriented artifact for a campaign set —
/// byte-comparable between the parallel and sequential drivers.
pub fn artifact(reports: &[CampaignReport]) -> String {
    let mut out = format!("# RAS chaos soak: {} campaigns\n", reports.len());
    for r in reports {
        out.push_str(&r.artifact_line());
    }
    out
}

/// [`artifact`] with a self-describing header recording the shard count
/// the campaigns ran at — what the `soak` binary emits, so an archived
/// artifact says how it was produced. The campaign lines themselves are
/// identical at every shard count (that's the sharded engine's
/// contract), so only the header differs.
pub fn artifact_with_shards(reports: &[CampaignReport], shards: usize) -> String {
    let mut out = format!(
        "# RAS chaos soak: {} campaigns (sim shards: {shards})\n",
        reports.len()
    );
    for r in reports {
        out.push_str(&r.artifact_line());
    }
    out
}

/// Runs every campaign across the thread pool, merging reports in input
/// order. Campaigns share no state, so this is byte-identical to
/// [`soak_sequential`].
pub fn soak_parallel(specs: &[SoakSpec]) -> Vec<CampaignReport> {
    soak_parallel_sharded(specs, 1)
}

/// [`soak_parallel`] with each campaign's machine additionally split
/// into `shards` simulation shards — campaign-level fan-out *and*
/// intra-campaign sharding on the same vendored work queue.
pub fn soak_parallel_sharded(specs: &[SoakSpec], shards: usize) -> Vec<CampaignReport> {
    par_indexed(specs.to_vec(), move |s| run_campaign_sharded(s, shards))
}

/// Sequential reference for [`soak_parallel`].
pub fn soak_sequential(specs: &[SoakSpec]) -> Vec<CampaignReport> {
    specs.iter().copied().map(run_campaign).collect()
}

/// All contract violations across a campaign set (empty = the soak passed).
pub fn all_failures(specs: &[SoakSpec], reports: &[CampaignReport]) -> Vec<String> {
    specs
        .iter()
        .zip(reports)
        .flat_map(|(s, r)| r.failures(s))
        .collect()
}
