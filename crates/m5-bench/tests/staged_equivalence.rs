//! Property net for the staged SoA access engine: on *random* access
//! streams — not just the golden workloads — the chunked driver (which
//! dispatches staged translate/LLC/bill/tracker blocks whenever the
//! injector is quiescent) must stay byte-identical to the
//! `run_per_access` oracle, with fault windows active and the contention
//! model enabled, and a mid-chunk checkpoint/restore split must land on
//! the exact same final state as the run that never stopped.
//!
//! The deterministic suites (`chunk_determinism.rs`, `checkpoint.rs`)
//! pin the golden workloads; this file fuzzes the space between them:
//! arbitrary page-collision patterns, write/op-end mixes, chunk
//! capacities that misalign with the staged block bound, and split
//! points that cut a chunk (and the staged block inside it) anywhere.

use cxl_sim::faults::{FaultKind, FaultPlan};
use cxl_sim::prelude::*;
use cxl_sim::system::{run_chunked, run_per_access, Region};
use m5_baselines::anb::{Anb, AnbConfig};
use m5_bench::checkpoint::{capture, drive_to, resume};
use m5_bench::golden;
use m5_core::manager::{M5Config, M5Manager};
use m5_workloads::access::{AccessRecorder, ReplayWorkload};
use proptest::prelude::*;

/// A fault plan whose spike/stall/poison/pressure windows all land inside
/// even the shortest generated run (a few hundred accesses simulate tens
/// of microseconds on the scaled machine).
fn active_plan() -> FaultPlan {
    FaultPlan::none()
        .with(
            Nanos::from_micros(1),
            FaultKind::LatencySpike {
                extra: Nanos::from_micros(1),
                duration: Nanos::from_micros(3),
            },
        )
        .with(
            Nanos::from_micros(5),
            FaultKind::ControllerStall {
                duration: Nanos::from_micros(2),
            },
        )
        .with(Nanos::from_micros(8), FaultKind::PoisonLine { reads: 2 })
        .with(
            Nanos::from_micros(10),
            FaultKind::DdrPressure {
                duration: Nanos::from_micros(4),
            },
        )
}

/// A contended machine executing `plan`, with the workload's pages on
/// CXL (so snoops, contention billing, and migration all have traffic).
fn contended_system(pages: u64, plan: &FaultPlan) -> (System, Region) {
    let config = SystemConfig::scaled_default()
        .with_cxl_frames(pages + 64)
        .with_ddr_frames((pages / 2).max(2))
        .with_contention(ContentionConfig::enabled_default().with_cxl_background(0.6))
        // Force even the shortest quiet blocks through the staged passes
        // so these properties exercise the staged engine, not the scalar
        // fallback the default threshold would pick for small streams.
        .with_staged_min_block(4);
    let mut sys = System::with_fault_plan(config, plan);
    let region = sys
        .alloc_region(pages, Placement::AllOnCxl)
        .expect("CXL sized to fit");
    (sys, region)
}

/// Replay workload over `region` built from raw (offset, write, op-end)
/// triples.
fn replay(ops: &[(u64, bool, bool)], pages: u64, region: &Region) -> ReplayWorkload {
    let mut rec = AccessRecorder::with_capacity(ops.len());
    let span = pages * 4096;
    for &(off, w, end) in ops {
        rec.push(off % span, w, end);
    }
    rec.into_workload("staged-prop", region.base)
}

/// Full-fidelity observation: rendered telemetry snapshot + report debug.
fn snapshot(sys: &mut System, report: &RunReport) -> (String, String) {
    sys.telemetry_mut().flush();
    let snap = golden::render("staged-prop", &sys.telemetry().snapshot());
    (snap, format!("{report:?}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chunked (staged) ≡ per-access oracle on random streams, faults and
    /// contention live, under both the M5 manager and the hinting-fault
    /// heavy ANB daemon, at chunk capacities that slice staged blocks at
    /// awkward points.
    #[test]
    fn staged_chunked_matches_per_access_oracle(
        ops in prop::collection::vec(
            (any::<u64>(), prop::bool::weighted(0.3), prop::bool::weighted(0.05)),
            64..1024,
        ),
        pages in 8u64..48,
        cap_idx in 0usize..5,
        use_anb in any::<bool>(),
    ) {
        let cap = [3usize, 7, 64, 509, 4096][cap_idx];
        let plan = active_plan();
        let accesses = ops.len() as u64;

        let oracle = {
            let (mut sys, region) = contended_system(pages, &plan);
            sys.install_telemetry(Telemetry::enabled());
            let mut wl = replay(&ops, pages, &region);
            let report = if use_anb {
                let mut d = Anb::new(AnbConfig::default());
                run_per_access(&mut sys, &mut wl, &mut d, accesses)
            } else {
                let mut d = M5Manager::new(M5Config::default());
                run_per_access(&mut sys, &mut wl, &mut d, accesses)
            };
            snapshot(&mut sys, &report)
        };

        let staged = {
            let (mut sys, region) = contended_system(pages, &plan);
            sys.install_telemetry(Telemetry::enabled());
            let mut wl = replay(&ops, pages, &region);
            let report = if use_anb {
                let mut d = Anb::new(AnbConfig::default());
                run_chunked(&mut sys, &mut wl, &mut d, accesses, cap)
            } else {
                let mut d = M5Manager::new(M5Config::default());
                run_chunked(&mut sys, &mut wl, &mut d, accesses, cap)
            };
            snapshot(&mut sys, &report)
        };

        prop_assert_eq!(&oracle.1, &staged.1, "report diverged (cap={})", cap);
        prop_assert_eq!(&oracle.0, &staged.0, "telemetry diverged (cap={})", cap);
    }

    /// Checkpointing at an arbitrary access index — almost always inside
    /// a chunk, and usually inside a staged block — and restoring into a
    /// fresh machine must produce the byte-identical final checkpoint,
    /// report, and telemetry of the uninterrupted run.
    #[test]
    fn staged_restore_equals_continue_at_any_split(
        ops in prop::collection::vec(
            (any::<u64>(), prop::bool::weighted(0.3), prop::bool::weighted(0.05)),
            128..1024,
        ),
        pages in 8u64..48,
        split_num in 1u64..99,
    ) {
        let plan = active_plan();
        let accesses = ops.len() as u64;
        let split = (accesses * split_num / 100).max(1);

        let uninterrupted = {
            let (mut sys, region) = contended_system(pages, &plan);
            sys.install_telemetry(Telemetry::enabled());
            let mut wl = replay(&ops, pages, &region);
            let mut m5 = M5Manager::new(M5Config::default());
            let mut run = ChunkedRun::begin(&mut sys, &mut m5);
            drive_to(&mut sys, &mut m5, &mut run, &mut wl, accesses);
            let cp = capture(&mut sys, &m5, &run, &wl).encode();
            let report = run.finish(&mut sys, &m5);
            let (snap, rep) = snapshot(&mut sys, &report);
            (cp, snap, rep)
        };

        let restored = {
            let (mut sys, region) = contended_system(pages, &plan);
            sys.install_telemetry(Telemetry::enabled());
            let mut wl = replay(&ops, pages, &region);
            let mut m5 = M5Manager::new(M5Config::default());
            let mut run = ChunkedRun::begin(&mut sys, &mut m5);
            drive_to(&mut sys, &mut m5, &mut run, &mut wl, split);
            prop_assert_eq!(run.accesses(), split, "split point not reached");
            let mid = capture(&mut sys, &m5, &run, &wl).encode();
            let config = sys.config().clone();
            drop((sys, wl, m5, run));

            let cp = Checkpoint::decode(&mid).expect("mid-run snapshot decodes");
            let (_, region2) = contended_system(pages, &plan);
            prop_assert_eq!(region2.base, region.base, "deterministic layout");
            let mut wl = replay(&ops, pages, &region2);
            let resumed = resume(&cp, config, &plan, M5Config::default(), &mut wl)
                .expect("mid-run snapshot restores");
            let (mut sys, mut m5, mut run) = (resumed.sys, resumed.m5, resumed.run);
            drive_to(&mut sys, &mut m5, &mut run, &mut wl, accesses);
            let cp = capture(&mut sys, &m5, &run, &wl).encode();
            let report = run.finish(&mut sys, &m5);
            let (snap, rep) = snapshot(&mut sys, &report);
            (cp, snap, rep)
        };

        prop_assert_eq!(&uninterrupted.2, &restored.2, "report diverged at split {}", split);
        prop_assert_eq!(&uninterrupted.1, &restored.1, "telemetry diverged at split {}", split);
        prop_assert_eq!(&uninterrupted.0, &restored.0, "final checkpoints differ at split {}", split);
    }
}
