//! Batch-driver determinism: the chunked and overlapped drivers must be
//! **byte-identical** to the per-access reference loop.
//!
//! Equality is asserted on the strongest observable evidence the system
//! produces: the rendered golden-format telemetry snapshot (every
//! counter, gauge, and histogram percentile) plus the debug-formatted
//! `RunReport`. Any divergence in fault servicing, epoch timing, TLB
//! flush cadence, daemon wake order, or latency accounting shows up
//! here — at chunk size 1 (every access is its own batch), at sizes
//! that misalign with every internal cadence, and at the default.
//!
//! `run_per_access` is kept in-tree precisely as this test's oracle.

use cxl_sim::faults::{FaultKind, FaultPlan};
use cxl_sim::prelude::*;
use cxl_sim::report::RunReport;
use cxl_sim::system::{run_chunked, run_per_access};
use m5_baselines::anb::{Anb, AnbConfig};
use m5_bench::golden::{self, GOLDENS};
use m5_bench::pipeline::run_overlapped_chunked;
use m5_core::manager::{M5Config, M5Manager};
use m5_workloads::access::ReplayWorkload;

/// Reduced budget: enough for several M5 epochs and migrations on every
/// golden workload while keeping the full driver matrix fast.
const ACCESSES: u64 = 60_000;

/// Chunk capacities that misalign with every internal cadence: 1 forces
/// a daemon-dispatch check between every pair of accesses, 7 and 509 are
/// prime, 4096 is the default.
const CAPS: [usize; 4] = [1, 7, 509, 4096];

type BoxedDaemon = Box<dyn MigrationDaemon + Send>;
type Driver =
    dyn Fn(&mut System, &mut ReplayWorkload, &mut (dyn MigrationDaemon + Send), u64) -> RunReport;

/// Runs one workload under `daemon_new()` with telemetry enabled and the
/// given driver, returning the full rendered snapshot + report.
/// `contended` enables the queueing timing model with that CXL background
/// load — the determinism contract must hold with contention state in the
/// loop too.
#[allow(clippy::too_many_arguments)]
fn observe(
    spec: &m5_workloads::registry::WorkloadSpec,
    plan: &FaultPlan,
    seed: u64,
    accesses: u64,
    contended: Option<f64>,
    daemon_new: &dyn Fn() -> BoxedDaemon,
    drive: &Driver,
) -> (String, String) {
    let (mut sys, region) = match contended {
        Some(bg) => m5_bench::standard_contended_system_with_faults(spec, plan, bg),
        None => m5_bench::standard_system_with_faults(spec, plan),
    };
    sys.install_telemetry(Telemetry::enabled());
    let mut wl = spec.build(region.base, accesses, seed);
    let mut daemon = daemon_new();
    let report = drive(&mut sys, &mut wl, daemon.as_mut(), accesses);
    sys.telemetry_mut().flush();
    let snap = golden::render("determinism", &sys.telemetry().snapshot());
    (snap, format!("{report:?}"))
}

/// Asserts every chunked/overlapped variant matches the per-access
/// reference for one (spec, plan, daemon) configuration.
#[allow(clippy::too_many_arguments)]
fn assert_all_drivers_match(
    label: &str,
    spec: &m5_workloads::registry::WorkloadSpec,
    plan: &FaultPlan,
    seed: u64,
    accesses: u64,
    contended: Option<f64>,
    daemon_new: &dyn Fn() -> BoxedDaemon,
) {
    let reference = observe(
        spec,
        plan,
        seed,
        accesses,
        contended,
        daemon_new,
        &|s, w, d, m| run_per_access(s, w, d, m),
    );
    for cap in CAPS {
        let chunked = observe(
            spec,
            plan,
            seed,
            accesses,
            contended,
            daemon_new,
            &move |s, w, d, m| run_chunked(s, w, d, m, cap),
        );
        assert_eq!(
            chunked, reference,
            "{label}: run_chunked(cap={cap}) diverged from per-access"
        );
        let overlapped = observe(
            spec,
            plan,
            seed,
            accesses,
            contended,
            daemon_new,
            &move |s, w, d, m| run_overlapped_chunked(s, w, d, m, cap),
        );
        assert_eq!(
            overlapped, reference,
            "{label}: run_overlapped(cap={cap}) diverged from per-access"
        );
    }
}

fn m5_daemon() -> BoxedDaemon {
    Box::new(M5Manager::new(M5Config::default()))
}

/// Every golden workload under the M5 manager: graph (PageRank), kv
/// (uniform Redis), spec (Zipf Mcf) — the exact configurations whose
/// checked-in goldens the chunked pipeline regenerated.
#[test]
fn golden_workloads_match_per_access_at_every_chunk_size() {
    for g in &GOLDENS {
        let spec = g.benchmark.spec();
        assert_all_drivers_match(
            g.name,
            &spec,
            &FaultPlan::none(),
            g.seed,
            ACCESSES,
            None,
            &m5_daemon,
        );
    }
}

/// With an active fault plan the batch driver must fall back to the
/// fully-checked path at exactly the same accesses: spikes and stalls
/// add latency, poisoned reads retry, and DDR pressure shifts costs —
/// all of it must land on identical accesses in every driver.
#[test]
fn fault_plan_runs_match_per_access_at_every_chunk_size() {
    let spec = GOLDENS[2].benchmark.spec();
    let plan = FaultPlan::none()
        .with(
            Nanos::from_micros(500),
            FaultKind::LatencySpike {
                extra: Nanos::from_micros(2),
                duration: Nanos::from_micros(300),
            },
        )
        .with(
            Nanos::from_millis(1),
            FaultKind::ControllerStall {
                duration: Nanos::from_micros(150),
            },
        )
        .with(
            Nanos::from_micros(1_400),
            FaultKind::PoisonLine { reads: 3 },
        )
        .with(
            Nanos::from_micros(1_700),
            FaultKind::DdrPressure {
                duration: Nanos::from_micros(400),
            },
        );
    assert_all_drivers_match("faulted-spec", &spec, &plan, 42, 40_000, None, &m5_daemon);
}

/// ANB unmaps pages and relies on NUMA hinting faults delivered through
/// `MigrationDaemon::on_fault` — the `BatchPause::Fault` hand-off. The
/// fault must surface after the faulting access and before the next one
/// in every driver, or promotion order (and everything downstream)
/// diverges.
#[test]
fn anb_hinting_fault_path_matches_per_access() {
    let spec = GOLDENS[0].benchmark.spec();
    assert_all_drivers_match(
        "anb-graph",
        &spec,
        &FaultPlan::none(),
        42,
        ACCESSES,
        None,
        &|| Box::new(Anb::new(AnbConfig::default())),
    );
}

/// With the contention model enabled (queueing state, per-class billing,
/// window rollovers all live), every driver must still match the
/// per-access reference byte-for-byte at every chunk size — the queue
/// advances only with the sim clock, never with batching structure.
#[test]
fn contended_runs_match_per_access_at_every_chunk_size() {
    let g = &GOLDENS[0];
    let spec = g.benchmark.spec();
    assert_all_drivers_match(
        "contended-graph",
        &spec,
        &FaultPlan::none(),
        g.seed,
        ACCESSES,
        Some(0.7),
        &m5_daemon,
    );
}
