//! Core-sharded engine determinism: a run split across N simulation
//! shards must be **byte-identical** to the sequential driver — same
//! rendered telemetry snapshot, same debug-formatted `RunReport`, and
//! the same encoded run checkpoint, at every shard count, on every
//! golden workload, with fault windows and the contention model on or
//! off.
//!
//! The shard count partitions LLC sets and page runs across workers on
//! the vendored work queue; cross-shard effects ride a logical-time
//! operation log and apply at deterministic sync points. Nothing
//! observable may depend on how the OS schedules those workers — these
//! suites are the enforcement.
//!
//! The deterministic matrix pins the golden workloads; the proptest
//! below fuzzes the space between them: random access streams whose
//! migrations (M5 promotions) and epoch/bandwidth rollovers land between
//! sharded blocks, at shard counts and chunk capacities that slice
//! page runs and LLC set partitions at awkward boundaries.

use cxl_sim::faults::{FaultKind, FaultPlan};
use cxl_sim::prelude::*;
use cxl_sim::system::{run_chunked, run_per_access, Region};
use m5_bench::golden::{self, GoldenSpec, GOLDENS};
use m5_bench::sharded::observe_golden;
use m5_core::manager::{M5Config, M5Manager};
use m5_workloads::access::{AccessRecorder, ReplayWorkload};
use proptest::prelude::*;

/// Reduced budget: several M5 epochs and migrations per golden while
/// keeping the 48-run matrix fast.
const ACCESSES: u64 = 40_000;

/// Shard counts compared against the sequential reference: 2 (minimal
/// split), 3 (uneven partition of power-of-two set counts), 8 (more
/// shards than this host has cores).
const SHARDS: [usize; 3] = [2, 3, 8];

fn reduced(g: &GoldenSpec) -> GoldenSpec {
    GoldenSpec {
        accesses: ACCESSES,
        ..*g
    }
}

/// A fault plan whose spike/stall/poison/pressure windows all land well
/// inside the reduced budget.
fn fault_plan() -> FaultPlan {
    FaultPlan::none()
        .with(
            Nanos::from_micros(500),
            FaultKind::LatencySpike {
                extra: Nanos::from_micros(2),
                duration: Nanos::from_micros(300),
            },
        )
        .with(
            Nanos::from_millis(1),
            FaultKind::ControllerStall {
                duration: Nanos::from_micros(150),
            },
        )
        .with(
            Nanos::from_micros(1_400),
            FaultKind::PoisonLine { reads: 3 },
        )
        .with(
            Nanos::from_micros(1_700),
            FaultKind::DdrPressure {
                duration: Nanos::from_micros(400),
            },
        )
}

/// Runs every golden at every shard count under one (plan, contention)
/// cell and asserts the full evidence bundle — snapshot, report, and
/// checkpoint bytes — matches the sequential (shards = 1) reference.
fn assert_sharded_matches_sequential(label: &str, plan: &FaultPlan, background: Option<f64>) {
    for g in &GOLDENS {
        let g = reduced(g);
        let reference = observe_golden(&g, 1, plan, background);
        for s in SHARDS {
            let sharded = observe_golden(&g, s, plan, background);
            assert_eq!(
                sharded.report, reference.report,
                "{label}/{}: report diverged at {s} shards",
                g.name
            );
            assert_eq!(
                sharded.snapshot, reference.snapshot,
                "{label}/{}: telemetry diverged at {s} shards",
                g.name
            );
            assert_eq!(
                sharded.checkpoint, reference.checkpoint,
                "{label}/{}: checkpoint bytes diverged at {s} shards",
                g.name
            );
        }
    }
}

#[test]
fn sharded_goldens_match_sequential() {
    assert_sharded_matches_sequential("clean", &FaultPlan::none(), None);
}

#[test]
fn sharded_goldens_match_sequential_with_faults() {
    assert_sharded_matches_sequential("faulted", &fault_plan(), None);
}

#[test]
fn sharded_goldens_match_sequential_with_contention() {
    assert_sharded_matches_sequential("contended", &FaultPlan::none(), Some(0.7));
}

#[test]
fn sharded_goldens_match_sequential_with_faults_and_contention() {
    assert_sharded_matches_sequential("faulted+contended", &fault_plan(), Some(0.7));
}

/// Guard against a vacuous matrix: the golden machines must actually
/// dispatch blocks through the sharded fan-out (not fall back to the
/// scalar staged path for every block, which would make the equality
/// assertions above prove nothing).
#[test]
fn sharded_path_engages_on_golden_machines() {
    let g = reduced(&GOLDENS[0]);
    let spec = g.benchmark.spec();
    let (mut sys, region) = m5_bench::standard_system(&spec);
    sys.enable_stage_timing();
    sys.set_sim_shards(4);
    let mut wl = spec.build(region.base, g.accesses, g.seed);
    let mut m5 = M5Manager::new(M5Config::default());
    let report = run_chunked(&mut sys, &mut wl, &mut m5, g.accesses, 4096);
    assert_eq!(report.accesses, g.accesses);
    let st = sys.stage_times().expect("stage timing enabled");
    assert!(
        st.sharded_blocks > 0,
        "no block took the sharded fan-out: blocks={} staged_accesses={}",
        st.blocks,
        st.staged_accesses
    );
}

/// A contended, faulted machine whose staged threshold is forced low so
/// even short generated streams dispatch through the *sharded* staged
/// engine rather than the scalar fallback.
fn sharded_prop_system(pages: u64, plan: &FaultPlan) -> (System, Region) {
    let config = SystemConfig::scaled_default()
        .with_cxl_frames(pages + 64)
        .with_ddr_frames((pages / 2).max(2))
        .with_contention(ContentionConfig::enabled_default().with_cxl_background(0.6))
        .with_staged_min_block(4);
    let mut sys = System::with_fault_plan(config, plan);
    let region = sys
        .alloc_region(pages, Placement::AllOnCxl)
        .expect("CXL sized to fit");
    (sys, region)
}

/// Replay workload over `region` built from raw (offset, write, op-end)
/// triples.
fn replay(ops: &[(u64, bool, bool)], pages: u64, region: &Region) -> ReplayWorkload {
    let mut rec = AccessRecorder::with_capacity(ops.len());
    let span = pages * 4096;
    for &(off, w, end) in ops {
        rec.push(off % span, w, end);
    }
    rec.into_workload("sharded-prop", region.base)
}

/// Full-fidelity observation: rendered telemetry snapshot + report debug.
fn snapshot(sys: &mut System, report: &RunReport) -> (String, String) {
    sys.telemetry_mut().flush();
    let snap = golden::render("sharded-prop", &sys.telemetry().snapshot());
    (snap, format!("{report:?}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded chunked ≡ per-access oracle on random streams: the M5
    /// manager promotes hot pages (migrations) and its epochs — plus the
    /// perfmon bandwidth windows — roll over between sharded blocks,
    /// while faults and contention stay live. The shard count and chunk
    /// capacity are both fuzzed so partition boundaries cut page runs
    /// and LLC set ranges everywhere.
    #[test]
    fn sharded_chunked_matches_per_access_oracle(
        ops in prop::collection::vec(
            (any::<u64>(), prop::bool::weighted(0.3), prop::bool::weighted(0.05)),
            64..768,
        ),
        pages in 8u64..48,
        shards in 2usize..9,
        cap_idx in 0usize..4,
    ) {
        let cap = [17usize, 64, 509, 4096][cap_idx];
        let plan = fault_plan();
        let accesses = ops.len() as u64;

        let oracle = {
            let (mut sys, region) = sharded_prop_system(pages, &plan);
            sys.install_telemetry(Telemetry::enabled());
            let mut wl = replay(&ops, pages, &region);
            let mut d = M5Manager::new(M5Config::default());
            let report = run_per_access(&mut sys, &mut wl, &mut d, accesses);
            snapshot(&mut sys, &report)
        };

        let sharded = {
            let (mut sys, region) = sharded_prop_system(pages, &plan);
            sys.install_telemetry(Telemetry::enabled());
            sys.set_sim_shards(shards);
            let mut wl = replay(&ops, pages, &region);
            let mut d = M5Manager::new(M5Config::default());
            let report = run_chunked(&mut sys, &mut wl, &mut d, accesses, cap);
            snapshot(&mut sys, &report)
        };

        prop_assert_eq!(
            &oracle.1, &sharded.1,
            "report diverged (shards={}, cap={})", shards, cap
        );
        prop_assert_eq!(
            &oracle.0, &sharded.0,
            "telemetry diverged (shards={}, cap={})", shards, cap
        );
    }
}
