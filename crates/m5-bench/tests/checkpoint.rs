//! Restore≡continue differential net for the run-level checkpoint
//! harness.
//!
//! The contract under test: checkpointing a run at an interior epoch and
//! resuming it in a fresh process yields a **byte-identical** final
//! checkpoint, [`cxl_sim::prelude::RunReport`], and rendered metrics
//! snapshot to the run that never stopped — across all three golden
//! workloads, on a contended machine executing an active fault plan, and
//! through torn-commit crashes that force the `.prev` fallback.
//!
//! Set `M5_CKPT_ARTIFACTS=<dir>` to keep the checkpoint images the tests
//! write (CI uploads them when the suite fails).

use cxl_sim::checkpoint::Checkpoint;
use cxl_sim::faults::{FaultKind, FaultPlan};
use cxl_sim::prelude::*;
use cxl_sim::system::ChunkedRun;
use m5_bench::checkpoint::{
    capture, drive_to, drive_with_checkpoints, golden_parts, golden_parts_faulted, resume,
    resume_from_file,
};
use m5_bench::golden::{render, GoldenSpec, GOLDENS};
use m5_bench::soak::{
    checkpoint_campaign, run_campaign, run_campaign_resumable, SoakScenario, SoakSpec,
};
use m5_core::manager::M5Config;
use std::path::PathBuf;

/// Where this test writes checkpoint images: the CI artifact dir when
/// `M5_CKPT_ARTIFACTS` is set, a process-unique temp dir otherwise.
fn ckpt_dir(tag: &str) -> PathBuf {
    let d = match std::env::var_os("M5_CKPT_ARTIFACTS") {
        Some(dir) => PathBuf::from(dir).join(tag),
        None => std::env::temp_dir().join(format!("m5-ckpt-it-{}-{tag}", std::process::id())),
    };
    std::fs::create_dir_all(&d).expect("checkpoint dir creatable");
    d
}

/// Runs `g` to completion with the sequential chunked driver, returning
/// the final full-state checkpoint bytes, the report, and the rendered
/// metrics snapshot.
fn golden_uninterrupted(g: &GoldenSpec) -> (Vec<u8>, RunReport, String) {
    let (mut sys, mut wl, mut m5) = golden_parts(g);
    let mut run = ChunkedRun::begin(&mut sys, &mut m5);
    drive_to(&mut sys, &mut m5, &mut run, &mut wl, g.accesses);
    let cp = capture(&mut sys, &m5, &run, &wl);
    let report = run.finish(&mut sys, &m5);
    sys.telemetry_mut().flush();
    let snap = render(g.name, &sys.telemetry().snapshot());
    (cp.encode(), report, snap)
}

/// Runs `g` to `split` accesses, checkpoints, then restores the encoded
/// bytes into an entirely fresh machine/manager/workload and finishes the
/// run — the "killed and restarted in a new process" path.
fn golden_split(g: &GoldenSpec, split: u64) -> (Vec<u8>, RunReport, String) {
    // First process: run to the split point and checkpoint.
    let (mut sys, mut wl, mut m5) = golden_parts(g);
    let mut run = ChunkedRun::begin(&mut sys, &mut m5);
    drive_to(&mut sys, &mut m5, &mut run, &mut wl, split);
    assert_eq!(run.accesses(), split, "split point not reached");
    let mid = capture(&mut sys, &m5, &run, &wl).encode();
    let config = sys.config().clone();
    drop((sys, wl, m5, run));

    // Second process: everything rebuilt from spec + snapshot bytes.
    let cp = Checkpoint::decode(&mid).expect("mid-run snapshot decodes");
    let (_, mut wl, _) = golden_parts(g); // fresh trace, same deterministic base
    let resumed = resume(
        &cp,
        config,
        &FaultPlan::none(),
        M5Config::default(),
        &mut wl,
    )
    .expect("mid-run snapshot restores");
    let (mut sys, mut m5, mut run) = (resumed.sys, resumed.m5, resumed.run);
    assert_eq!(run.accesses(), split, "restored driver lost its position");
    drive_to(&mut sys, &mut m5, &mut run, &mut wl, g.accesses);
    let cp = capture(&mut sys, &m5, &run, &wl);
    let report = run.finish(&mut sys, &m5);
    sys.telemetry_mut().flush();
    let snap = render(g.name, &sys.telemetry().snapshot());
    (cp.encode(), report, snap)
}

fn assert_restore_equals_continue(g: &GoldenSpec, split: u64) {
    let (cp_a, report_a, snap_a) = golden_uninterrupted(g);
    let (cp_b, report_b, snap_b) = golden_split(g, split);
    assert_eq!(
        report_a, report_b,
        "golden '{}': restored run's report diverged from the uninterrupted run",
        g.name
    );
    assert_eq!(
        snap_a, snap_b,
        "golden '{}': restored run's metrics snapshot diverged",
        g.name
    );
    assert_eq!(
        cp_a, cp_b,
        "golden '{}': final full-state checkpoints are not byte-identical",
        g.name
    );
}

#[test]
fn golden_graph_restore_equals_continue() {
    assert_restore_equals_continue(&GOLDENS[0], 100_000);
}

#[test]
fn golden_kv_restore_equals_continue() {
    assert_restore_equals_continue(&GOLDENS[1], 100_000);
}

#[test]
fn golden_spec_restore_equals_continue() {
    assert_restore_equals_continue(&GOLDENS[2], 100_000);
}

/// The chunked driver the checkpoint harness uses must itself be
/// byte-identical to the overlapped driver the golden suite runs — the
/// quiescent (checkpoint-free) path is exactly the committed goldens.
#[test]
fn chunked_driver_matches_the_golden_harness() {
    let g = GoldenSpec {
        accesses: 60_000,
        ..GOLDENS[0]
    };
    let (_, report_chunked, snap_chunked) = golden_uninterrupted(&g);
    let (snap, report) = m5_bench::golden::run_golden(&g, None);
    assert_eq!(report, report_chunked);
    assert_eq!(render(g.name, &snap), snap_chunked);
}

/// Restore≡continue on a hostile machine: contention enabled and an
/// active fault plan (latency spike, poisoned reads, copy failures, DDR
/// pressure, CE bursts) spanning the split point.
#[test]
fn contended_faulted_restore_equals_continue() {
    use cxl_sim::faults::DeviceFault;
    let g = GoldenSpec {
        accesses: 120_000,
        ..GOLDENS[1]
    };
    let plan = FaultPlan::none()
        .with(
            Nanos(50_000),
            FaultKind::LatencySpike {
                extra: Nanos(400),
                duration: Nanos(4_000_000),
            },
        )
        .with(Nanos(200_000), FaultKind::PoisonLine { reads: 3 })
        .with(Nanos(400_000), FaultKind::MigrationCopyFail { attempts: 2 })
        .with(
            Nanos(900_000),
            FaultKind::DdrPressure {
                duration: Nanos(2_000_000),
            },
        )
        .with(
            Nanos(1_200_000),
            FaultKind::Device(DeviceFault::CorrectableEcc { pfn: 3 }),
        )
        .with(
            Nanos(6_000_000),
            FaultKind::Device(DeviceFault::CorrectableEcc { pfn: 3 }),
        );
    let background = Some(0.5);
    let split = 60_000;

    let run_full = |()| {
        let (mut sys, mut wl, mut m5) = golden_parts_faulted(&g, &plan, background);
        let mut run = ChunkedRun::begin(&mut sys, &mut m5);
        drive_to(&mut sys, &mut m5, &mut run, &mut wl, g.accesses);
        let cp = capture(&mut sys, &m5, &run, &wl);
        let report = run.finish(&mut sys, &m5);
        sys.telemetry_mut().flush();
        (
            cp.encode(),
            report,
            render(g.name, &sys.telemetry().snapshot()),
        )
    };
    let (cp_a, report_a, snap_a) = run_full(());
    assert!(
        report_a.health.faults_injected > 0,
        "the fault plan never fired — this differential would be vacuous"
    );

    let (mut sys, mut wl, mut m5) = golden_parts_faulted(&g, &plan, background);
    let mut run = ChunkedRun::begin(&mut sys, &mut m5);
    drive_to(&mut sys, &mut m5, &mut run, &mut wl, split);
    let mid = capture(&mut sys, &m5, &run, &wl).encode();
    let config = sys.config().clone();
    drop((sys, wl, m5, run));

    let cp = Checkpoint::decode(&mid).expect("mid-run snapshot decodes");
    let (_, mut wl, _) = golden_parts_faulted(&g, &plan, background);
    let resumed =
        resume(&cp, config, &plan, M5Config::default(), &mut wl).expect("snapshot restores");
    let (mut sys, mut m5, mut run) = (resumed.sys, resumed.m5, resumed.run);
    drive_to(&mut sys, &mut m5, &mut run, &mut wl, g.accesses);
    let cp_b = capture(&mut sys, &m5, &run, &wl).encode();
    let report_b = run.finish(&mut sys, &m5);
    sys.telemetry_mut().flush();
    let snap_b = render(g.name, &sys.telemetry().snapshot());

    assert_eq!(report_a, report_b, "contended+faulted report diverged");
    assert_eq!(snap_a, snap_b, "contended+faulted snapshot diverged");
    assert_eq!(cp_a, cp_b, "contended+faulted final checkpoints differ");
}

/// Torn-snapshot sweep: commit a valid checkpoint, then tear a newer one
/// at EVERY manifest section index (including the crash between the two
/// commit renames). Loading must never accept a torn image: every torn
/// index falls back to the previous valid checkpoint, and a restored run
/// from the fallback still completes with clean invariants.
#[test]
fn torn_commit_at_every_section_falls_back_to_previous_valid() {
    let g = GoldenSpec {
        accesses: 40_000,
        ..GOLDENS[1]
    };
    let dir = ckpt_dir("torn-sweep");
    let path = dir.join("golden.ckpt");
    let prev_path = dir.join("golden.ckpt.prev");

    let (mut sys, mut wl, mut m5) = golden_parts(&g);
    let mut run = ChunkedRun::begin(&mut sys, &mut m5);
    drive_to(&mut sys, &mut m5, &mut run, &mut wl, 15_000);
    let cp1 = capture(&mut sys, &m5, &run, &wl);
    drive_to(&mut sys, &mut m5, &mut run, &mut wl, 30_000);
    let cp2 = capture(&mut sys, &m5, &run, &wl);
    let config = sys.config().clone();

    let sections = cp2.section_count() as u64;
    assert!(sections >= 15, "manifest unexpectedly small: {sections}");
    for at in 0..=sections {
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&prev_path);
        cp1.commit(&path).expect("priming commit");
        cp2.commit_torn(&path, at).expect("torn commit io");
        let loaded = Checkpoint::load(&path)
            .unwrap_or_else(|e| panic!("torn at section {at}: no valid image: {e}"));
        assert!(
            loaded.fell_back,
            "torn at section {at}: a torn image was accepted as primary"
        );
        assert_eq!(
            loaded.checkpoint.encode(),
            cp1.encode(),
            "torn at section {at}: fallback is not the previous valid image"
        );
    }

    // A clean commit over the primed image is accepted as primary.
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&prev_path);
    cp1.commit(&path).expect("priming commit");
    cp2.commit(&path).expect("clean commit");
    let loaded = Checkpoint::load(&path).expect("clean image loads");
    assert!(!loaded.fell_back);
    assert_eq!(loaded.checkpoint.encode(), cp2.encode());

    // Resume from representative fallback images and finish the run:
    // invariants clean, every region page still mapped exactly once.
    for at in [0, sections / 2, sections] {
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&prev_path);
        cp1.commit(&path).expect("priming commit");
        cp2.commit_torn(&path, at).expect("torn commit io");
        let (_, mut wl, _) = golden_parts(&g);
        let (resumed, fell_back) = resume_from_file(
            &path,
            config.clone(),
            &FaultPlan::none(),
            M5Config::default(),
            &mut wl,
        )
        .expect("fallback image restores");
        assert!(fell_back);
        let (mut sys, mut m5, mut run) = (resumed.sys, resumed.m5, resumed.run);
        assert_eq!(
            run.accesses(),
            15_000,
            "fallback resumed at the wrong point"
        );
        drive_to(&mut sys, &mut m5, &mut run, &mut wl, g.accesses);
        let report = run.finish(&mut sys, &m5);
        assert_eq!(report.accesses, g.accesses);
        let violations = sys.check_invariants();
        assert!(violations.is_empty(), "torn at {at}: {violations:?}");
        let pages = g.benchmark.spec().footprint_pages;
        assert_eq!(
            sys.nr_pages(NodeId::Ddr) + sys.nr_pages(NodeId::Cxl),
            pages,
            "torn at {at}: pages lost or double-mapped after fallback restore"
        );
    }
    if std::env::var_os("M5_CKPT_ARTIFACTS").is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// End-to-end injector-driven crash: a `TornCheckpoint` fault armed
/// mid-run tears the periodic commit it lands on; a restart then falls
/// back to the previous interval's image and still finishes the run.
#[test]
fn armed_torn_fault_tears_the_periodic_commit_and_restart_falls_back() {
    let g = GoldenSpec {
        accesses: 20_000,
        ..GOLDENS[0]
    };
    // Probe: find the simulated instant of the first periodic commit, so
    // the fault provably arms between the first and second commits.
    let t_mid = {
        let (mut sys, mut wl, mut m5) = golden_parts(&g);
        let mut run = ChunkedRun::begin(&mut sys, &mut m5);
        drive_to(&mut sys, &mut m5, &mut run, &mut wl, 10_000);
        sys.now()
    };
    let plan = FaultPlan::none().with(
        Nanos(t_mid.0 + 1),
        FaultKind::TornCheckpoint { at_section: 4 },
    );
    let dir = ckpt_dir("torn-armed");
    let path = dir.join("run.ckpt");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("run.ckpt.prev"));

    let (mut sys, mut wl, mut m5) = golden_parts_faulted(&g, &plan, None);
    let mut run = ChunkedRun::begin(&mut sys, &mut m5);
    let outcome = drive_with_checkpoints(
        &mut sys, &mut m5, &mut run, &mut wl, g.accesses, 10_000, &path,
    )
    .expect("checkpoint io");
    assert_eq!(outcome.commits, 2, "expected commits at 10k and 20k");
    assert_eq!(
        outcome.torn_commits, 1,
        "the armed fault must tear exactly the second commit"
    );
    let config = sys.config().clone();
    drop((sys, wl, m5, run));

    // Restart: the torn primary is rejected, the 10k image restores.
    let (_, mut wl, _) = golden_parts(&g);
    let (resumed, fell_back) = resume_from_file(&path, config, &plan, M5Config::default(), &mut wl)
        .expect("previous interval image restores");
    assert!(
        fell_back,
        "restart should have fallen back to the 10k image"
    );
    let (mut sys, mut m5, mut run) = (resumed.sys, resumed.m5, resumed.run);
    assert_eq!(run.accesses(), 10_000);
    drive_to(&mut sys, &mut m5, &mut run, &mut wl, g.accesses);
    let report = run.finish(&mut sys, &m5);
    assert_eq!(report.accesses, g.accesses);
    assert!(sys.check_invariants().is_empty());
    if std::env::var_os("M5_CKPT_ARTIFACTS").is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A chaos-soak campaign killed mid-run and resumed from its periodic
/// checkpoint must report exactly what the uninterrupted campaign does.
#[test]
fn soak_campaign_resumed_from_checkpoint_matches_uninterrupted() {
    // The standard CI chaos campaign (seed 1): the full default budget,
    // so the evacuation the chaos plan triggers concludes before exit and
    // the campaign is judged against the real RAS contract.
    let spec = SoakSpec {
        scenario: SoakScenario::Chaos,
        seed: 1,
        accesses: 400_000,
        ddr_frames: 1024,
    };
    let reference = run_campaign(spec);

    let dir = ckpt_dir("soak-resume");
    let path = dir.join(format!("{}.ckpt", spec.name()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join(format!("{}.ckpt.prev", spec.name())));
    checkpoint_campaign(spec, &path, 200_000);
    let resumed = run_campaign_resumable(spec, &path, 150_000);
    assert_eq!(
        format!("{reference:?}"),
        format!("{resumed:?}"),
        "resumed campaign diverged from the uninterrupted reference"
    );
    assert!(
        resumed.failures(&spec).is_empty(),
        "{:?}",
        resumed.failures(&spec)
    );
    if std::env::var_os("M5_CKPT_ARTIFACTS").is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The checkpoint-seeded crash sweep: every tail point restored from the
/// mid-run seed must fire its reset, complete the budget, and exit with
/// clean invariants — same contract as the unseeded sweep, at roughly
/// half the replay cost per point.
#[test]
fn seeded_crash_sweep_tail_points_recover_cleanly() {
    use m5_bench::crash_sweep::{baseline, run_with_reset_from_seed, seed_checkpoint, SWEEPS};
    let s = SWEEPS[0];
    let base = baseline(&s);
    assert!(base.violations.is_empty());
    let seed = seed_checkpoint(&s, s.accesses / 2);
    assert!(
        seed.steps < base.steps,
        "seed point ({}) is past the baseline's last journal step ({})",
        seed.steps,
        base.steps
    );
    // Sample up to 12 tail points evenly across (seed.steps, base.steps]
    // — each point replays only the post-seed half of the workload, and
    // the full every-point sweep already runs unseeded in CI.
    let lo = seed.steps + 1;
    let hi = base.steps;
    let n = (hi - lo + 1).min(12);
    let mut picks: Vec<u64> = (0..n).map(|i| lo + i * (hi - lo) / n.max(1)).collect();
    picks.push(hi);
    picks.dedup();
    for at_step in picks {
        let r = run_with_reset_from_seed(&s, &seed, at_step);
        assert!(r.fired, "step {at_step}: reset never struck");
        assert_eq!(r.accesses, s.accesses, "step {at_step}: budget incomplete");
        assert!(
            r.violations.is_empty(),
            "step {at_step}: invariants violated: {:?}",
            r.violations
        );
    }
}

/// Restoring under a config that differs from the checkpointed one is a
/// typed rejection, not a silently wrong machine.
#[test]
fn restore_rejects_config_skew() {
    let g = GoldenSpec {
        accesses: 10_000,
        ..GOLDENS[0]
    };
    let (mut sys, mut wl, mut m5) = golden_parts(&g);
    let mut run = ChunkedRun::begin(&mut sys, &mut m5);
    drive_to(&mut sys, &mut m5, &mut run, &mut wl, 5_000);
    let cp = capture(&mut sys, &m5, &run, &wl);
    let skewed = sys.config().clone().with_ddr_frames(7);
    let (_, mut fresh_wl, _) = golden_parts(&g);
    let err = resume(
        &cp,
        skewed,
        &FaultPlan::none(),
        M5Config::default(),
        &mut fresh_wl,
    );
    assert!(
        matches!(err, Err(cxl_sim::checkpoint::RestoreError::ConfigMismatch)),
        "config skew must be rejected as RestoreError::ConfigMismatch"
    );
}

/// Randomized torture: interleave access batches, clean snapshots, torn
/// crashes at arbitrary sections, and restores in any order. Whatever the
/// sequence, the machine must never trip an invariant, and every region
/// page must stay mapped exactly once (no pages lost to a crash, none
/// double-mapped by a restore).
mod interleaving {
    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Copy, Debug)]
    enum Op {
        /// Drive roughly `0..4096` more accesses through the run.
        Advance(u16),
        /// Capture + clean two-phase commit.
        Snapshot,
        /// Capture + commit torn at section `k % (sections + 1)`.
        Torn(u16),
        /// Reload the newest valid image (if any) into a fresh machine.
        Restore,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1u16..4096).prop_map(Op::Advance),
            Just(Op::Snapshot),
            (0u16..64).prop_map(Op::Torn),
            Just(Op::Restore),
        ]
    }

    static CASE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn random_crash_restore_cycles_never_lose_a_page(ops in proptest::collection::vec(op_strategy(), 1..10)) {
            let g = GoldenSpec { accesses: 40_000, ..GOLDENS[2] };
            let pages = g.benchmark.spec().footprint_pages;
            // A light fault plan so checkpoint cycles also cross live
            // fault state (spike window + CE hits on a shared frame).
            let plan = FaultPlan::none()
                .with(Nanos(30_000), FaultKind::LatencySpike { extra: Nanos(300), duration: Nanos(2_000_000) })
                .with(Nanos(90_000), FaultKind::Device(cxl_sim::faults::DeviceFault::CorrectableEcc { pfn: 5 }))
                .with(Nanos(700_000), FaultKind::Device(cxl_sim::faults::DeviceFault::CorrectableEcc { pfn: 5 }));
            let case = CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let dir = ckpt_dir("prop");
            let path = dir.join(format!("case-{case}.ckpt"));
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(dir.join(format!("case-{case}.ckpt.prev")));

            let (mut sys, mut wl, mut m5) = golden_parts_faulted(&g, &plan, None);
            let config = sys.config().clone();
            let mut run = ChunkedRun::begin(&mut sys, &mut m5);
            for op in &ops {
                match *op {
                    Op::Advance(n) => {
                        let target = (run.accesses() + n as u64).min(g.accesses);
                        drive_to(&mut sys, &mut m5, &mut run, &mut wl, target);
                    }
                    Op::Snapshot => {
                        let cp = capture(&mut sys, &m5, &run, &wl);
                        cp.commit(&path).expect("clean commit io");
                    }
                    Op::Torn(k) => {
                        let cp = capture(&mut sys, &m5, &run, &wl);
                        let at = k as u64 % (cp.section_count() as u64 + 1);
                        cp.commit_torn(&path, at).expect("torn commit io");
                    }
                    Op::Restore => {
                        if let Ok(loaded) = Checkpoint::load(&path) {
                            let (_, mut fresh_wl, _) = golden_parts_faulted(&g, &plan, None);
                            let resumed = resume(
                                &loaded.checkpoint, config.clone(), &plan,
                                M5Config::default(), &mut fresh_wl,
                            ).expect("a loaded image always restores");
                            sys = resumed.sys;
                            m5 = resumed.m5;
                            run = resumed.run;
                            wl = fresh_wl;
                        }
                    }
                }
                let violations = sys.check_invariants();
                prop_assert!(violations.is_empty(), "after {op:?}: {violations:?}");
                prop_assert_eq!(
                    sys.nr_pages(NodeId::Ddr) + sys.nr_pages(NodeId::Cxl),
                    pages,
                    "after {:?}: pages lost or double-mapped", op
                );
            }
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(dir.join(format!("case-{case}.ckpt.prev")));
        }
    }
}
