//! RAS chaos soak: seeded fault campaigns (every one including a live
//! CXL-node evacuation) run through the full M5 manager, judged on the
//! RAS contract — budget completes, invariants clean, zero pages lost or
//! double-mapped, bounded incremental drain, graceful survivor
//! exhaustion.
//!
//! Set `M5_SOAK_ARTIFACTS=<dir>` to write the campaign artifact there
//! (CI uploads it when the soak fails).

use m5_bench::soak::{
    all_failures, artifact, default_campaigns, soak_parallel, soak_parallel_sharded,
    soak_sequential, SoakScenario, SoakSpec,
};
use std::path::PathBuf;

fn artifact_dir() -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var_os("M5_SOAK_ARTIFACTS")?);
    std::fs::create_dir_all(&dir).ok()?;
    Some(dir)
}

/// The default campaign set (8 chaos seeds + 2 clean evacuations + 1
/// squeezed survivor) upholds every clause of the RAS contract.
#[test]
fn default_soak_campaigns_uphold_the_ras_contract() {
    let specs = default_campaigns(false);
    let chaos = specs
        .iter()
        .filter(|s| s.scenario == SoakScenario::Chaos)
        .count();
    assert!(chaos >= 8, "at least eight seeded chaos campaigns");

    let reports = soak_parallel(&specs);
    if let Some(dir) = artifact_dir() {
        let _ = std::fs::write(dir.join("ras_soak.txt"), artifact(&reports));
    }
    let failures = all_failures(&specs, &reports);
    assert!(
        failures.is_empty(),
        "{} campaigns violated the RAS contract:\n{}\n{}",
        failures.len(),
        failures.join("\n"),
        artifact(&reports),
    );
}

/// The parallel fan-out must be byte-identical to the sequential
/// reference — campaigns share nothing and merge in input order.
#[test]
fn parallel_soak_matches_sequential() {
    // A reduced budget keeps the double run in test-friendly time; this
    // test checks determinism, not the contract.
    let specs: Vec<SoakSpec> = default_campaigns(false)
        .into_iter()
        .filter(|s| s.scenario == SoakScenario::Chaos)
        .take(3)
        .map(|s| SoakSpec {
            accesses: 60_000,
            ..s
        })
        .collect();
    let par = artifact(&soak_parallel(&specs));
    let seq = artifact(&soak_sequential(&specs));
    assert_eq!(par, seq, "parallel soak artifact diverged from sequential");
}

/// Campaigns run with their machines split into simulation shards must
/// produce the byte-identical artifact too — the core-sharded engine's
/// contract applied to the soak path.
#[test]
fn sharded_soak_matches_sequential() {
    let specs: Vec<SoakSpec> = default_campaigns(false)
        .into_iter()
        .filter(|s| s.scenario == SoakScenario::Chaos)
        .take(2)
        .map(|s| SoakSpec {
            accesses: 60_000,
            ..s
        })
        .collect();
    let sharded = artifact(&soak_parallel_sharded(&specs, 4));
    let seq = artifact(&soak_sequential(&specs));
    assert_eq!(
        sharded, seq,
        "sharded soak artifact diverged from sequential"
    );
}
