//! Contention-model differential and figure tests (ISSUE 7).
//!
//! The cornerstone: with `ContentionConfig::disabled()` (the default) the
//! timing path must be **byte-identical** to the fixed-cost path — on the
//! strongest evidence the system produces (rendered golden-format
//! telemetry snapshot + debug-formatted `RunReport`), across all three
//! golden workloads, even with deliberately absurd link parameters parked
//! behind the disabled switch. The checked-in goldens themselves are the
//! other half of this differential (`tests/golden.rs` runs them
//! unchanged).
//!
//! With contention *enabled*, the loaded-latency sweep must produce the
//! classic shape: throughput non-increasing in offered load with a
//! visible latency knee, and a migration storm must backpressure demand
//! latency — measurably when enabled, not at all when disabled.

use cxl_sim::prelude::*;
use m5_bench::crash_sweep::{SweepSpec, SWEEPS};
use m5_bench::golden::{self, GOLDENS};
use m5_bench::loaded::{self, SWEEP_BACKGROUNDS};
use m5_bench::parallel::{crash_sweep_parallel, crash_sweep_sequential};
use m5_bench::pipeline::run_overlapped;
use m5_core::manager::{M5Config, M5Manager};

/// Reduced budget: several M5 epochs and migrations per golden workload.
const ACCESSES: u64 = 60_000;

/// Runs one golden workload on `config`, returning the full rendered
/// snapshot and report.
fn observe(g: &golden::GoldenSpec, config: SystemConfig) -> (String, String) {
    let spec = g.benchmark.spec();
    let mut sys = System::new(
        config
            .with_cxl_frames(spec.footprint_pages + 1024)
            .with_ddr_frames(spec.footprint_pages / 2),
    );
    sys.install_telemetry(Telemetry::enabled());
    let region = sys
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .unwrap();
    let mut wl = spec.build(region.base, ACCESSES, g.seed);
    let mut m5 = M5Manager::new(M5Config::default());
    let report = run_overlapped(&mut sys, &mut wl, &mut m5, ACCESSES);
    sys.telemetry_mut().flush();
    let snap = golden::render("contention-diff", &sys.telemetry().snapshot());
    (snap, format!("{report:?}"))
}

/// A disabled config whose parked parameters are absurd: if any code path
/// consults them while `enabled` is false, the differential explodes.
fn disabled_with_absurd_params() -> ContentionConfig {
    let mut cfg = ContentionConfig::disabled();
    cfg.cxl = LinkParams {
        peak_bytes_per_sec: 1,
        knee: 0.0,
        slope: 1000.0,
        max_load_factor: 1000.0,
        write_cost_permille: 100_000,
        background_load: 0.97,
        burst_capacity: Nanos::from_millis(10),
    };
    cfg.ddr = cfg.cxl;
    cfg
}

/// Contention disabled ⇒ byte-identical to the stock fixed-cost path, for
/// every golden workload, even with absurd parameters behind the switch.
#[test]
fn disabled_contention_is_byte_identical_to_fixed_costs() {
    for g in &GOLDENS {
        let stock = observe(g, SystemConfig::scaled_default());
        let explicit = observe(
            g,
            SystemConfig::scaled_default().with_contention(ContentionConfig::disabled()),
        );
        assert_eq!(
            stock, explicit,
            "golden '{}': explicit disabled() diverged from default",
            g.name
        );
        let absurd = observe(
            g,
            SystemConfig::scaled_default().with_contention(disabled_with_absurd_params()),
        );
        assert_eq!(
            stock, absurd,
            "golden '{}': disabled-but-absurd params leaked into the timing path",
            g.name
        );
    }
}

/// The loaded-latency sweep: latency monotone (within measurement-feedback
/// jitter) with a visible knee, throughput declining into saturation.
#[test]
fn loaded_latency_sweep_shows_knee_and_throughput_decline() {
    let points = loaded::sweep(
        GOLDENS[2].benchmark,
        GOLDENS[2].seed,
        40_000,
        &SWEEP_BACKGROUNDS,
        true,
    );
    assert_eq!(points.len(), SWEEP_BACKGROUNDS.len());
    for w in points.windows(2) {
        assert!(
            w[1].loaded_latency.0 >= w[0].loaded_latency.0,
            "loaded latency fell from {:?} (bg {}) to {:?} (bg {})",
            w[0].loaded_latency,
            w[0].background,
            w[1].loaded_latency,
            w[1].background
        );
        // Throughput must never *rise* with more offered load (2%
        // tolerance for window-measurement feedback).
        assert!(
            w[1].sim_accesses_per_sec() <= w[0].sim_accesses_per_sec() * 1.02,
            "throughput rose with offered load: {:.0} (bg {}) -> {:.0} (bg {})",
            w[0].sim_accesses_per_sec(),
            w[0].background,
            w[1].sim_accesses_per_sec(),
            w[1].background
        );
    }
    let first = points.first().unwrap();
    let last = points.last().unwrap();
    assert!(
        last.loaded_latency.0 as f64 >= first.loaded_latency.0 as f64 * 1.5,
        "no visible knee: {:?} at bg {} vs {:?} at bg {}",
        first.loaded_latency,
        first.background,
        last.loaded_latency,
        last.background
    );
    assert!(
        last.sim_accesses_per_sec() < first.sim_accesses_per_sec(),
        "saturation did not reduce throughput"
    );

    // Contention off: the identical sweep is flat — every point bit-equal.
    let off = loaded::sweep(
        GOLDENS[2].benchmark,
        GOLDENS[2].seed,
        40_000,
        &SWEEP_BACKGROUNDS,
        false,
    );
    for w in off.windows(2) {
        assert_eq!(
            w[0].total_time, w[1].total_time,
            "fixed-cost sweep not flat"
        );
        assert_eq!(w[0].loaded_latency, w[1].loaded_latency);
    }
    assert_eq!(
        off[0].loaded_latency.0, 400,
        "fixed CXL latency is the floor"
    );
}

/// Migration-storm backpressure: copy traffic on the shared link raises
/// demand latency when contention is on; the identical schedule with
/// contention off shows exactly zero delta.
#[test]
fn migration_storm_backpressures_demand_only_when_contended() {
    let on = loaded::migration_storm(true);
    assert!(on.migrated > 0);
    assert!(
        on.storm_avg_ns > on.calm_avg_ns,
        "no backpressure: calm {:.1} ns vs storm {:.1} ns",
        on.calm_avg_ns,
        on.storm_avg_ns
    );

    let off = loaded::migration_storm(false);
    assert_eq!(on.migrated, off.migrated, "schedules must be identical");
    assert_eq!(
        off.calm_avg_ns, off.storm_avg_ns,
        "fixed-cost path: storm must not move demand latency at all"
    );
    assert!(
        on.backpressure_ns() > 0.0 && off.backpressure_ns() == 0.0,
        "backpressure on={:.1} off={:.1}",
        on.backpressure_ns(),
        off.backpressure_ns()
    );
}

/// The crash-sweep's parallel and sequential drivers must stay
/// byte-identical with queueing enabled — contention state advances only
/// with the sim clock, so fan-out must not perturb it.
#[test]
fn contended_crash_sweep_parallel_matches_sequential() {
    let spec = SweepSpec {
        accesses: 8_000,
        contended: true,
        ..SWEEPS[0]
    };
    let par = crash_sweep_parallel(&spec);
    let seq = crash_sweep_sequential(&spec);
    assert!(
        par.baseline.violations.is_empty(),
        "contended baseline violates invariants: {:?}",
        par.baseline.violations
    );
    assert_eq!(par.baseline.steps, seq.baseline.steps);
    assert_eq!(
        par.artifact("contended-graph"),
        seq.artifact("contended-graph"),
        "contended parallel sweep artifact diverged from sequential"
    );
}
