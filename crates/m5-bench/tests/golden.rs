//! Golden-trace differential tests: three seeded workloads run through the
//! standard machine + M5 manager with telemetry enabled; the canonical
//! metrics snapshot must match the checked-in golden within per-metric
//! tolerances.
//!
//! * Regenerate: `UPDATE_GOLDENS=1 cargo test -p m5-bench --test golden`
//! * CI artifacts: set `M5_GOLDEN_ARTIFACTS=<dir>` to dump each run's
//!   JSONL event trace and rendered metrics there.

use m5_bench::golden::{diff, render, run_golden, GoldenSpec, GOLDENS};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("goldens")
        .join(format!("golden_{name}.txt"))
}

fn artifact_dir() -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var_os("M5_GOLDEN_ARTIFACTS")?);
    std::fs::create_dir_all(&dir).ok()?;
    Some(dir)
}

fn check(g: &GoldenSpec) {
    let dir = artifact_dir();
    let jsonl = dir
        .as_ref()
        .map(|d| d.join(format!("golden_{}.trace.jsonl", g.name)));
    let (snap, report) = run_golden(g, jsonl.as_deref());
    assert!(report.accesses > 0, "golden '{}' ran no accesses", g.name);
    let actual = render(g.name, &snap);
    if let Some(d) = &dir {
        let _ = std::fs::write(d.join(format!("golden_{}.metrics.txt", g.name)), &actual);
    }
    let path = golden_path(g.name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with UPDATE_GOLDENS=1 \
             cargo test -p m5-bench --test golden",
            path.display()
        )
    });
    let mismatches = diff(&expected, &actual);
    assert!(
        mismatches.is_empty(),
        "golden '{}' drifted ({} metrics):\n{}",
        g.name,
        mismatches.len(),
        mismatches.join("\n")
    );
}

#[test]
fn golden_graph() {
    check(&GOLDENS[0]);
}

#[test]
fn golden_kv() {
    check(&GOLDENS[1]);
}

#[test]
fn golden_spec() {
    check(&GOLDENS[2]);
}

/// Two consecutive runs of the same golden spec must render byte-identical
/// snapshots — the determinism the whole harness rests on.
#[test]
fn golden_runs_are_deterministic() {
    let g = &GOLDENS[0];
    let (a, ra) = run_golden(g, None);
    let (b, rb) = run_golden(g, None);
    assert_eq!(ra, rb, "run reports diverged across identical runs");
    assert_eq!(
        render(g.name, &a),
        render(g.name, &b),
        "rendered snapshots diverged across identical runs"
    );
}

/// The parallel golden driver must render byte-identical snapshots to the
/// sequential loop, in the same order — each run owns a fresh `System`
/// and `Telemetry`, and the fan-out merges results in input order.
#[test]
fn parallel_goldens_match_sequential() {
    use m5_bench::parallel::{goldens_parallel, goldens_sequential};
    // Reduced budgets: this compares drivers, not workload behaviour.
    let specs: Vec<GoldenSpec> = GOLDENS
        .iter()
        .map(|g| GoldenSpec {
            accesses: 20_000,
            ..*g
        })
        .collect();
    let par = goldens_parallel(&specs);
    let seq = goldens_sequential(&specs);
    assert_eq!(par.len(), seq.len());
    for (i, (p, s)) in par.iter().zip(&seq).enumerate() {
        assert_eq!(
            p, s,
            "golden '{}' rendered differently under the parallel driver",
            specs[i].name
        );
    }
}
