//! Golden-trace differential tests: three seeded workloads run through the
//! standard machine + M5 manager with telemetry enabled; the canonical
//! metrics snapshot must match the checked-in golden within per-metric
//! tolerances.
//!
//! * Regenerate: `UPDATE_GOLDENS=1 cargo test -p m5-bench --test golden`
//! * CI artifacts: set `M5_GOLDEN_ARTIFACTS=<dir>` to dump each run's
//!   JSONL event trace and rendered metrics there.

use m5_bench::golden::{diff, render, run_golden, GoldenSpec, GOLDENS};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("goldens")
        .join(format!("golden_{name}.txt"))
}

fn artifact_dir() -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var_os("M5_GOLDEN_ARTIFACTS")?);
    std::fs::create_dir_all(&dir).ok()?;
    Some(dir)
}

fn check(g: &GoldenSpec) {
    let dir = artifact_dir();
    let jsonl = dir
        .as_ref()
        .map(|d| d.join(format!("golden_{}.trace.jsonl", g.name)));
    let (snap, report) = run_golden(g, jsonl.as_deref());
    assert!(report.accesses > 0, "golden '{}' ran no accesses", g.name);
    let actual = render(g.name, &snap);
    if let Some(d) = &dir {
        let _ = std::fs::write(d.join(format!("golden_{}.metrics.txt", g.name)), &actual);
    }
    let path = golden_path(g.name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with UPDATE_GOLDENS=1 \
             cargo test -p m5-bench --test golden",
            path.display()
        )
    });
    let mismatches = diff(&expected, &actual);
    assert!(
        mismatches.is_empty(),
        "golden '{}' drifted ({} metrics):\n{}",
        g.name,
        mismatches.len(),
        mismatches.join("\n")
    );
}

#[test]
fn golden_graph() {
    check(&GOLDENS[0]);
}

#[test]
fn golden_kv() {
    check(&GOLDENS[1]);
}

#[test]
fn golden_spec() {
    check(&GOLDENS[2]);
}

/// Two consecutive runs of the same golden spec must render byte-identical
/// snapshots — the determinism the whole harness rests on.
#[test]
fn golden_runs_are_deterministic() {
    let g = &GOLDENS[0];
    let (a, ra) = run_golden(g, None);
    let (b, rb) = run_golden(g, None);
    assert_eq!(ra, rb, "run reports diverged across identical runs");
    assert_eq!(
        render(g.name, &a),
        render(g.name, &b),
        "rendered snapshots diverged across identical runs"
    );
}
