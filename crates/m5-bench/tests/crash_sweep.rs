//! Crash-point sweep: for each golden workload family, deterministically
//! inject a controller reset at EVERY journal step index the fault-free
//! baseline performs, and assert that journal recovery restores the
//! system invariants and the run still completes its access budget.
//!
//! Because resets strike exactly at journal-append boundaries and the
//! simulator is deterministic, the perturbed run is identical to the
//! baseline up to the injection point — so sweeping `1..=baseline.steps`
//! provably exercises a crash at every reachable transaction state.
//!
//! Set `M5_SWEEP_ARTIFACTS=<dir>` to write a per-workload failure report
//! there (CI uploads these when the sweep fails).

use m5_bench::crash_sweep::{baseline, run_with_reset, SweepSpec, SWEEPS};
use std::path::PathBuf;

fn artifact_dir() -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var_os("M5_SWEEP_ARTIFACTS")?);
    std::fs::create_dir_all(&dir).ok()?;
    Some(dir)
}

fn sweep(s: &SweepSpec) {
    let base = baseline(s);
    assert!(
        base.violations.is_empty(),
        "sweep '{}' baseline violates invariants: {:?}",
        s.name,
        base.violations
    );
    assert!(
        base.committed > 0,
        "sweep '{}' baseline never migrated — the sweep would be vacuous",
        s.name
    );

    let mut report = vec![format!(
        "# crash sweep '{}': baseline steps={} committed={}",
        s.name, base.steps, base.committed
    )];
    let mut failures = 0usize;
    for at_step in 1..=base.steps {
        let r = run_with_reset(s, at_step);
        let mut bad: Vec<String> = Vec::new();
        // The run is byte-identical to the baseline until the append at
        // `at_step`, which the baseline demonstrably reached — so the
        // reset must actually strike.
        if !r.fired {
            bad.push("reset never fired".into());
        }
        if r.accesses != s.accesses {
            bad.push(format!(
                "run stopped at {}/{} accesses",
                r.accesses, s.accesses
            ));
        }
        bad.extend(r.violations.iter().map(|v| format!("invariant: {v}")));
        if !bad.is_empty() {
            failures += 1;
            report.push(format!(
                "step {at_step}: FAIL ({}) [steps={} committed={} final_recovery={:?}]",
                bad.join("; "),
                r.steps,
                r.committed,
                r.final_recovery
            ));
        }
    }
    report.push(format!("# {}/{} sweep points failed", failures, base.steps));
    if let Some(dir) = artifact_dir() {
        let _ = std::fs::write(
            dir.join(format!("crash_sweep_{}.txt", s.name)),
            report.join("\n"),
        );
    }
    assert_eq!(
        failures,
        0,
        "crash sweep '{}' failed:\n{}",
        s.name,
        report.join("\n")
    );
}

#[test]
fn crash_sweep_graph() {
    sweep(&SWEEPS[0]);
}

#[test]
fn crash_sweep_kv() {
    sweep(&SWEEPS[1]);
}

#[test]
fn crash_sweep_spec() {
    sweep(&SWEEPS[2]);
}
