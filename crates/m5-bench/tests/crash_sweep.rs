//! Crash-point sweep: for each golden workload family, deterministically
//! inject a controller reset at EVERY journal step index the fault-free
//! baseline performs, and assert that journal recovery restores the
//! system invariants and the run still completes its access budget.
//!
//! Because resets strike exactly at journal-append boundaries and the
//! simulator is deterministic, the perturbed run is identical to the
//! baseline up to the injection point — so sweeping `1..=baseline.steps`
//! provably exercises a crash at every reachable transaction state.
//!
//! The sweep points are fanned across cores by the parallel driver
//! (`m5_bench::parallel`); each point owns its whole `System`, and
//! results merge in step order, so the sweep's artifact is byte-identical
//! to the sequential driver's (`parallel_sweep_matches_sequential`
//! asserts this on a real workload).
//!
//! Set `M5_SWEEP_ARTIFACTS=<dir>` to write a per-workload failure report
//! there (CI uploads these when the sweep fails).

use m5_bench::crash_sweep::{SweepSpec, SWEEPS};
use m5_bench::parallel::{crash_sweep_parallel, crash_sweep_sequential};
use std::path::PathBuf;

fn artifact_dir() -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var_os("M5_SWEEP_ARTIFACTS")?);
    std::fs::create_dir_all(&dir).ok()?;
    Some(dir)
}

fn sweep(s: &SweepSpec) {
    let out = crash_sweep_parallel(s);
    assert!(
        out.baseline.violations.is_empty(),
        "sweep '{}' baseline violates invariants: {:?}",
        s.name,
        out.baseline.violations
    );
    assert!(
        out.baseline.committed > 0,
        "sweep '{}' baseline never migrated — the sweep would be vacuous",
        s.name
    );

    let failing = out.failing_steps(s.accesses);
    if let Some(dir) = artifact_dir() {
        let _ = std::fs::write(
            dir.join(format!("crash_sweep_{}.txt", s.name)),
            out.artifact(s.name),
        );
    }
    assert!(
        failing.is_empty(),
        "crash sweep '{}': {}/{} points failed (steps {:?}):\n{}",
        s.name,
        failing.len(),
        out.baseline.steps,
        failing,
        out.artifact(s.name),
    );
}

#[test]
fn crash_sweep_graph() {
    sweep(&SWEEPS[0]);
}

#[test]
fn crash_sweep_kv() {
    sweep(&SWEEPS[1]);
}

#[test]
fn crash_sweep_spec() {
    sweep(&SWEEPS[2]);
}

/// The parallel sweep driver must produce a byte-identical artifact to the
/// strictly sequential one — the determinism guarantee the fan-out rests
/// on (each point owns its `System`; merge order is step order).
#[test]
fn parallel_sweep_matches_sequential() {
    // A reduced budget keeps two full sweeps in test-friendly time while
    // still exercising real migrations and recoveries.
    let spec = SweepSpec {
        accesses: 10_000,
        ..SWEEPS[0]
    };
    let par = crash_sweep_parallel(&spec);
    let seq = crash_sweep_sequential(&spec);
    assert_eq!(par.baseline.steps, seq.baseline.steps);
    assert_eq!(
        par.artifact(spec.name),
        seq.artifact(spec.name),
        "parallel sweep artifact diverged from sequential reference"
    );
}
