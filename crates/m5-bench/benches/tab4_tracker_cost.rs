//! Table 4 — Size and power of top-5 trackers (Space-Saving CAM vs
//! CM-Sketch SRAM) at 7 nm under the 400 MHz timing constraint.
//!
//! Prints the paper's published synthesis numbers next to this repo's
//! calibrated analytic model, plus the FPGA/ASIC maximum-N timing limits.

use m5_bench::banner;
use m5_trackers::cost::{CostModel, Technology, TrackerKind, TABLE4_PUBLISHED};

fn main() {
    banner(
        "Table 4",
        "size and power of top-5 trackers (published vs model)",
    );
    let model = CostModel::default();
    println!(
        "{:>8} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10} | {:>10} {:>10}",
        "N",
        "SS um2(pub)",
        "SS um2(mod)",
        "CM um2(pub)",
        "CM um2(mod)",
        "SS mW(pub)",
        "SS mW(mod)",
        "CM mW(pub)",
        "CM mW(mod)"
    );
    println!("{:-<112}", "");
    for row in TABLE4_PUBLISHED {
        let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.0}"));
        let fmt_opt1 = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.1}"));
        let ss_model = row
            .ss_area_um2
            .map(|_| model.area_um2(TrackerKind::SpaceSaving, row.n));
        let ss_pow_model = row
            .ss_power_mw
            .map(|_| model.power_mw(TrackerKind::SpaceSaving, row.n));
        println!(
            "{:>8} | {:>12} {:>12} | {:>12.0} {:>12.0} | {:>10} {:>10} | {:>10.1} {:>10.1}",
            row.n,
            fmt_opt(row.ss_area_um2),
            fmt_opt(ss_model),
            row.cm_area_um2,
            model.area_um2(TrackerKind::CmSketch, row.n),
            fmt_opt1(row.ss_power_mw),
            fmt_opt1(ss_pow_model),
            row.cm_power_mw,
            model.power_mw(TrackerKind::CmSketch, row.n),
        );
    }
    println!("{:-<112}", "");
    let ratio_row = TABLE4_PUBLISHED.iter().find(|r| r.n == 2048).unwrap();
    println!(
        "at N = 2K: Space-Saving costs {:.1}x the area and {:.1}x the power of CM-Sketch",
        ratio_row.ss_area_um2.unwrap() / ratio_row.cm_area_um2,
        ratio_row.ss_power_mw.unwrap() / ratio_row.cm_power_mw
    );
    println!("400 MHz timing limits on N:");
    for (kind, name) in [
        (TrackerKind::SpaceSaving, "Space-Saving"),
        (TrackerKind::CmSketch, "CM-Sketch"),
    ] {
        println!(
            "  {:>12}: FPGA {:>7}, 7nm ASIC {:>7}",
            name,
            CostModel::max_entries_at_400mhz(kind, Technology::Fpga),
            CostModel::max_entries_at_400mhz(kind, Technology::Asic7nm)
        );
    }
    println!(
        "paper anchors: SS synthesizable to 50 (FPGA) / 2K (ASIC); CM to 128K; at N=2K\n\
         SS costs 33.6x area and 7.6x power of CM."
    );
}
