//! Criterion micro-benchmarks for the simulator's hot path: the per-access
//! pipeline (TLB → LLC → DRAM → snoop) and page migration.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use cxl_sim::memory::NodeId;
use cxl_sim::prelude::*;
use m5_profilers::pac::{Pac, PacConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn setup(pages: u64) -> (System, cxl_sim::system::Region) {
    let mut sys = System::new(
        SystemConfig::scaled_default()
            .with_cxl_frames(pages + 64)
            .with_ddr_frames(pages),
    );
    let region = sys.alloc_region(pages, Placement::AllOnCxl).unwrap();
    (sys, region)
}

fn bench_access_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_access");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    let mut rng = SmallRng::seed_from_u64(5);
    let addrs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..4096u64 * 4096)).collect();

    group.bench_function("random_no_devices", |b| {
        let (mut sys, region) = setup(4096);
        b.iter(|| {
            for &a in &addrs {
                black_box(sys.access(region.base.offset(a), false));
            }
        });
    });

    group.bench_function("random_with_pac", |b| {
        let (mut sys, region) = setup(4096);
        sys.attach_device(Pac::new(PacConfig::covering_cxl(&sys)));
        b.iter(|| {
            for &a in &addrs {
                black_box(sys.access(region.base.offset(a), false));
            }
        });
    });
    group.finish();
}

fn bench_migration(c: &mut Criterion) {
    let mut group = c.benchmark_group("migration");
    group.throughput(Throughput::Elements(512));
    group.bench_function("promote_demote_512", |b| {
        b.iter(|| {
            let (mut sys, region) = setup(1024);
            let vpns: Vec<_> = region.vpns().take(512).collect();
            let out = sys.promote_with_demotion(&vpns, 64);
            black_box(out.migrated.len());
            for vpn in &vpns {
                let _ = sys.migrate_page(*vpn, NodeId::Cxl);
            }
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_access_path, bench_migration
}
criterion_main!(benches);
