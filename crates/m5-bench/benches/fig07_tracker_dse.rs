//! Figure 7 — Simulation-based design-space exploration of the top-K
//! trackers: average access-count ratio of (a) HPT and (b) HWT, for
//! Space-Saving and CM-Sketch, sweeping the number of entries N.
//!
//! Protocol (§7.1): cache-filtered, time-stamped DRAM traces of the four
//! most memory-intensive SPEC benchmarks plus Liblinear and PageRank are
//! fed into standalone tracker models; K = 5, query period 1 ms (HPT) /
//! 100 µs (HWT). Expected shape: precision rises with N for both; at
//! equal small N Space-Saving beats CM-Sketch (hash collisions); the
//! FPGA-feasible points are Space-Saving(50) vs CM-Sketch(up to 128K),
//! where CM-Sketch wins decisively (≈0.97 average at 32K vs ≈0.49 at
//! SS-50 in the paper).
//!
//! Execution: trace collection fans one workload per core, then the full
//! (benchmark × tracker-config) grid is evaluated by the deterministic
//! parallel driver — every cell replays its own tracker over a shared
//! immutable trace, and cells merge in row-major order, so the printed
//! table is identical to the old sequential nested loops.

use cxl_sim::time::Nanos;
use cxl_sim::trace::TraceRecord;
use m5_bench::parallel::{grid_parallel, par_indexed};
use m5_bench::{access_budget_from_args, banner, collect_trace, epoch_ratio};
use m5_trackers::topk::{CmSketchTopK, SpaceSavingTopK, TopKAlgorithm};
use m5_workloads::registry::Benchmark;

const K: usize = 5;
const SS_SWEEP: [usize; 5] = [50, 100, 512, 1024, 2048];
const CM_SWEEP: [usize; 8] = [50, 100, 512, 1024, 2048, 8192, 32768, 131072];

/// Builds the tracker a grid column names (`"SS-50"`, `"CM-32768"`).
fn tracker_for(col: &str) -> Box<dyn TopKAlgorithm> {
    let (alg, n) = col.split_once('-').expect("col is ALG-N");
    let n: usize = n.parse().expect("N is numeric");
    match alg {
        "SS" => Box::new(SpaceSavingTopK::new(n, K)),
        _ => Box::new(CmSketchTopK::with_total_entries(4, n, K, 11)),
    }
}

fn main() {
    banner(
        "Figure 7",
        "tracker DSE: access-count ratio vs N (K=5; HPT 1ms / HWT 100us epochs)",
    );
    let accesses = access_budget_from_args();
    let benches = [
        Benchmark::CactuBssn,
        Benchmark::Fotonik3d,
        Benchmark::Liblinear,
        Benchmark::Mcf,
        Benchmark::Pr,
        Benchmark::Roms,
    ];
    // Cap the in-memory traces: precision converges well before 8M
    // records, and 13 tracker configs replay each one repeatedly.
    let cap = (accesses as usize).min(8_000_000);
    let traces: Vec<(Benchmark, Vec<TraceRecord>)> = par_indexed(benches.to_vec(), |b| {
        (b, collect_trace(&b.spec(), accesses, cap, 7))
    });
    let trace_of = |label: &str| -> &[TraceRecord] {
        &traces
            .iter()
            .find(|(b, _)| b.label() == label)
            .expect("grid row is a collected benchmark")
            .1
    };

    let rows: Vec<String> = benches.iter().map(|b| b.label().to_string()).collect();
    let cols: Vec<String> = SS_SWEEP
        .iter()
        .map(|n| format!("SS-{n}"))
        .chain(CM_SWEEP.iter().map(|n| format!("CM-{n}")))
        .collect();

    // The paper queries HPT every 1 ms and HWT every 100 µs on hardware
    // that streams ~300K DRAM accesses per ms across 8–20 cores; the
    // single-core simulator issues ~6K per simulated ms, so periods are
    // scaled ×50 to hold *accesses per query epoch* constant.
    for (sub, key_name, period) in [
        ("(a) HPT", "page", Nanos::from_millis(50)),
        ("(b) HWT", "word", Nanos::from_millis(5)),
    ] {
        println!("\n--- {sub}: tracked key = {key_name}, query period = {period} ---");
        let page_key = key_name == "page";
        let cells = grid_parallel(&rows, &cols, |row, col| {
            let keyed = |l: cxl_sim::addr::CacheLineAddr| if page_key { l.pfn().0 } else { l.0 };
            let mut t = tracker_for(col);
            epoch_ratio(trace_of(row), keyed, t.as_mut(), K, period)
        });
        let cell = |row: &str, col: &str| -> f64 {
            cells
                .iter()
                .find(|c| c.row == row && c.col == col)
                .expect("grid covers every cell")
                .value
        };

        print!("{:>10} {:>6}", "bench", "alg");
        for n in CM_SWEEP {
            print!(" {n:>8}");
        }
        println!();
        let mut cm32k_sum = 0.0;
        let mut ss50_sum = 0.0;
        for row in &rows {
            print!("{row:>10} {:>6}", "SS");
            for &n in &SS_SWEEP {
                let r = cell(row, &format!("SS-{n}"));
                print!(" {r:>8.3}");
                if n == 50 {
                    ss50_sum += r;
                }
            }
            for _ in SS_SWEEP.len()..CM_SWEEP.len() {
                print!(" {:>8}", "-");
            }
            println!("  (N>2K not synthesizable)");

            print!("{:>10} {:>6}", "", "CM");
            for &n in &CM_SWEEP {
                let r = cell(row, &format!("CM-{n}"));
                print!(" {r:>8.3}");
                if n == 32768 {
                    cm32k_sum += r;
                }
            }
            println!();
        }
        println!(
            "means across benchmarks: CM-Sketch(32K) = {:.3}, Space-Saving(50) = {:.3}",
            cm32k_sum / benches.len() as f64,
            ss50_sum / benches.len() as f64
        );
    }
    // §7.1's side note: sweeping the hash-row count H from 2 to 16 (at
    // fixed N = H × W) has only a secondary effect on precision.
    println!("\n--- H sweep at N = 32K (mcf trace, HPT) ---");
    let trace = trace_of(Benchmark::Mcf.label());
    print!("{:>10}", "H");
    for h in [2usize, 4, 8, 16] {
        print!(" {h:>8}");
    }
    println!();
    print!("{:>10}", "ratio");
    for h in [2usize, 4, 8, 16] {
        let mut t = CmSketchTopK::with_total_entries(h, 32 * 1024, K, 11);
        let r = epoch_ratio(trace, |l| l.pfn().0, &mut t, K, Nanos::from_millis(50));
        print!(" {r:>8.3}");
    }
    println!();
    println!(
        "\npaper anchors: precision grows with N; SS > CM at equal small N; under FPGA\n\
         timing CM-Sketch(32K) ≈ 0.97 average while Space-Saving(50) ≈ 0.49;\n\
         H (2..16) is a secondary effect."
    );
}
