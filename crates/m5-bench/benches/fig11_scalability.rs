//! Figure 11 — Accuracy of the CM-Sketch(32K) tracker as the working-set
//! size grows: mcf, roms, fotonik3d and cactuBSSN at ×1..×64 co-running
//! instances, each in a disjoint physical range.
//!
//! Expected shape: graceful degradation — more unique addresses mean more
//! sketch collisions, but precision falls slowly rather than collapsing.

use cxl_sim::time::Nanos;
use cxl_sim::trace::TraceRecord;
use m5_bench::{access_budget_from_args, banner, epoch_ratio};
use m5_trackers::topk::CmSketchTopK;
use m5_workloads::registry::Benchmark;

const K: usize = 5;
const SCALES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Builds a merged cache-filtered trace of `instances` co-running copies,
/// each with its own region (disjoint physical ranges).
fn merged_trace(bench: Benchmark, instances: usize, per_instance: u64) -> Vec<TraceRecord> {
    use cxl_sim::prelude::*;
    use cxl_sim::trace::TraceCapture;
    let spec = bench.spec();
    let config = SystemConfig::scaled_default()
        .with_cxl_frames(spec.footprint_pages * instances as u64 + 1024)
        .with_ddr_frames(1024);
    let mut sys = System::new(config);
    let handle = sys.attach_device(TraceCapture::with_limit(
        ((per_instance as usize) * instances).min(8_000_000),
    ));
    // One region and one trace per instance; interleave round-robin like
    // co-scheduled processes.
    let mut streams: Vec<_> = (0..instances)
        .map(|i| {
            let region = sys
                .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
                .expect("CXL sized for all instances");
            spec.build(region.base, per_instance, 20 + i as u64)
        })
        .collect();
    let mut live = true;
    while live {
        live = false;
        for s in &mut streams {
            for _ in 0..64 {
                let Some(a) = s.next_access() else { break };
                sys.access(a.vaddr, a.is_write);
                live = true;
            }
        }
    }
    let cap: &TraceCapture = sys.device(handle).expect("capture");
    cap.records().to_vec()
}

fn main() {
    banner(
        "Figure 11",
        "CM-Sketch(32K) accuracy vs number of co-running instances",
    );
    let budget = access_budget_from_args();
    print!("{:>8}", "bench");
    for s in SCALES {
        print!(" {:>7}", format!("x{s}"));
    }
    println!();
    println!("{:-<68}", "");
    for bench in [
        Benchmark::Mcf,
        Benchmark::Roms,
        Benchmark::Fotonik3d,
        Benchmark::CactuBssn,
    ] {
        print!("{:>8}", bench.label());
        for instances in SCALES {
            // Keep the total trace bounded: split the budget across
            // instances so x64 doesn't take 64x the time.
            let per_instance = (budget / instances as u64).max(100_000);
            let trace = merged_trace(bench, instances, per_instance);
            let mut tracker = CmSketchTopK::with_total_entries(4, 32 * 1024, K, 13);
            // Same ×50 epoch scaling as Figure 7 (see that harness).
            let r = epoch_ratio(
                &trace,
                |l| l.pfn().0,
                &mut tracker,
                K,
                Nanos::from_millis(50),
            );
            print!(" {r:>7.3}");
        }
        println!();
    }
    println!("{:-<68}", "");
    println!(
        "paper anchors: precision decreases gracefully as footprint grows (32 instances\n\
         demand 20-27 GB there); 32K sketch entries cost only ~0.01% of an 8GB module's\n\
         die area, so larger devices can simply scale N (Table 4 reaches 128K)."
    );
}
