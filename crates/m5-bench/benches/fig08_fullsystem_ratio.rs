//! Figure 8 — Full-system average access-count ratios of HPT: the best
//! CPU-driven solution (ANB or DAMON) versus M5 with Space-Saving(50) and
//! CM-Sketch(32K) trackers, queried at the rates the Elector chooses.
//!
//! All solutions run record-only (§4.1 protocol) so PAC's per-PFN counts
//! stay comparable. Expected shape: CM-Sketch(32K) ≈ 3.5 % above
//! Space-Saving(50) and ≈ 47 % above the best CPU-driven solution on
//! average; M5's absolute ratio ≈ 0.72 (epoch-local hot sets differ from
//! whole-run hot sets).

use m5_baselines::anb::{Anb, AnbConfig};
use m5_baselines::damon::{Damon, DamonConfig};
use m5_bench::{
    access_budget_from_args, attach_pac, banner, k_for, main_benchmarks, run_ratio_protocol,
    standard_system,
};
use m5_core::manager::M5Manager;
use m5_core::policy;

const POINTS: usize = 4;

fn ratio_for_m5(
    bench: m5_workloads::registry::Benchmark,
    trace: &m5_workloads::access::ReplayWorkload,
    config: m5_core::manager::M5Config,
    accesses: u64,
) -> f64 {
    let spec = bench.spec();
    let (mut sys, _region) = standard_system(&spec);
    let pac = attach_pac(&mut sys);
    let mut wl = trace.fresh();
    let mut m5 = M5Manager::new(m5_core::manager::M5Config {
        record_only: true,
        ..config
    });
    let k = k_for(&spec);
    run_ratio_protocol(
        &mut sys,
        &mut wl,
        &mut m5,
        pac,
        k,
        accesses,
        POINTS,
        |d: &M5Manager| d.hot_log().pfns().collect(),
    )
    .mean()
}

fn main() {
    banner(
        "Figure 8",
        "full-system access-count ratio: best CPU-driven vs M5 SS(50) vs M5 CM(32K)",
    );
    let accesses = access_budget_from_args();
    println!(
        "{:>8} | {:>10} | {:>10} | {:>10}",
        "bench", "CPU best", "M5 SS(50)", "M5 CM(32K)"
    );
    println!("{:-<50}", "");
    let (mut cpu_sum, mut ss_sum, mut cm_sum) = (0.0, 0.0, 0.0);
    let benches = main_benchmarks();
    for bench in benches {
        let spec = bench.spec();
        let k = k_for(&spec);
        let (_, region) = standard_system(&spec);
        let trace = spec.build(region.base, accesses + 1024, 8);

        // Best CPU-driven: max of ANB and DAMON record-only ratios.
        let mut cpu_best = 0.0f64;
        {
            let (mut sys, _) = standard_system(&spec);
            let pac = attach_pac(&mut sys);
            let mut wl = trace.fresh();
            let mut anb = Anb::new(AnbConfig::record_only());
            let r = run_ratio_protocol(
                &mut sys,
                &mut wl,
                &mut anb,
                pac,
                k,
                accesses,
                POINTS,
                |d: &Anb| d.hot_log().pfns().collect(),
            );
            cpu_best = cpu_best.max(r.mean());
        }
        {
            let (mut sys, _) = standard_system(&spec);
            let pac = attach_pac(&mut sys);
            let mut wl = trace.fresh();
            let mut damon = Damon::new(DamonConfig::record_only());
            let r = run_ratio_protocol(
                &mut sys,
                &mut wl,
                &mut damon,
                pac,
                k,
                accesses,
                POINTS,
                |d: &Damon| d.hot_log().pfns().collect(),
            );
            cpu_best = cpu_best.max(r.mean());
        }

        let ss = ratio_for_m5(bench, &trace, policy::space_saving_50_policy(), accesses);
        let cm = ratio_for_m5(bench, &trace, policy::simple_hpt_policy(), accesses);
        println!(
            "{:>8} | {:>10.3} | {:>10.3} | {:>10.3}",
            bench.label(),
            cpu_best,
            ss,
            cm
        );
        cpu_sum += cpu_best;
        ss_sum += ss;
        cm_sum += cm;
    }
    let n = benches.len() as f64;
    println!("{:-<50}", "");
    println!(
        "{:>8} | {:>10.3} | {:>10.3} | {:>10.3}",
        "mean",
        cpu_sum / n,
        ss_sum / n,
        cm_sum / n
    );
    println!(
        "improvements: CM(32K) vs CPU best {:+.0}%, CM(32K) vs SS(50) {:+.1}%",
        100.0 * (cm_sum / cpu_sum - 1.0),
        100.0 * (cm_sum / ss_sum - 1.0)
    );
    println!(
        "paper anchors: CM(32K) mean ≈ 0.72; +47% over the best CPU-driven solution,\n\
         +3.5% over Space-Saving(50); M5 higher than CPU-driven for every benchmark."
    );
}
