//! §4.2 — The performance cost of *identifying* hot pages.
//!
//! Methodology: migration is disabled (`migrate_pages()` off — our
//! record-only daemon modes), the daemon is pinned to the application's
//! core, and we measure (a) the kernel time consumed by identification,
//! reported as inflation over a baseline housekeeping-kernel budget,
//! (b) Redis p99 latency inflation, and (c) execution-time inflation of
//! the best-effort benchmarks.
//!
//! Paper anchors: ANB inflates kernel cycles by up to 487 % (avg 159 %),
//! DAMON by up to 733 % (avg 277 %); Redis p99 rises 34 % (ANB) and 39 %
//! (DAMON); execution time rises up to 4.6 % (SSSP under ANB) and 8.6 %
//! (Liblinear under DAMON).

use cxl_sim::system::{run, NoMigration};
use m5_baselines::anb::{Anb, AnbConfig};
use m5_baselines::damon::{Damon, DamonConfig};
use m5_bench::{access_budget_from_args, banner, main_benchmarks, standard_system};
use m5_workloads::registry::Benchmark;

/// Housekeeping kernel time (timer ticks, RCU, softirq...) as a fraction
/// of runtime — the denominator for "increase in CPU cycles consumed by
/// the Linux kernel".
const BASELINE_KERNEL_FRACTION: f64 = 0.01;

struct Row {
    bench: Benchmark,
    anb_kernel_pct: f64,
    damon_kernel_pct: f64,
    anb_slowdown_pct: f64,
    damon_slowdown_pct: f64,
    anb_p99_pct: Option<f64>,
    damon_p99_pct: Option<f64>,
}

fn measure(bench: Benchmark, accesses: u64) -> Row {
    let spec = bench.spec();
    let mut reports = Vec::new();
    for daemon_kind in 0..3 {
        let (mut sys, region) = standard_system(&spec);
        let mut wl = spec.build(region.base, accesses + 1024, 5);
        let report = match daemon_kind {
            0 => run(&mut sys, &mut wl, &mut NoMigration, accesses),
            1 => {
                let mut d = Anb::new(AnbConfig::record_only());
                run(&mut sys, &mut wl, &mut d, accesses)
            }
            _ => {
                let mut d = Damon::new(DamonConfig::record_only());
                run(&mut sys, &mut wl, &mut d, accesses)
            }
        };
        reports.push(report);
    }
    let base_kernel = reports[0].total_time.as_secs_f64() * BASELINE_KERNEL_FRACTION;
    let kernel_pct = |i: usize| {
        let ident = reports[i].kernel.identification_total().as_secs_f64();
        100.0 * ident / base_kernel
    };
    let slowdown_pct = |i: usize| {
        100.0 * (reports[i].total_time.as_secs_f64() / reports[0].total_time.as_secs_f64() - 1.0)
    };
    let p99_pct = |i: usize| -> Option<f64> {
        let base = reports[0].p99()?.0 as f64;
        let with = reports[i].p99()?.0 as f64;
        Some(100.0 * (with / base - 1.0))
    };
    Row {
        bench,
        anb_kernel_pct: kernel_pct(1),
        damon_kernel_pct: kernel_pct(2),
        anb_slowdown_pct: slowdown_pct(1),
        damon_slowdown_pct: slowdown_pct(2),
        anb_p99_pct: if bench.scored_by_p99() {
            p99_pct(1)
        } else {
            None
        },
        damon_p99_pct: if bench.scored_by_p99() {
            p99_pct(2)
        } else {
            None
        },
    }
}

fn main() {
    banner(
        "Section 4.2",
        "cost of identifying hot pages (migration disabled)",
    );
    let accesses = access_budget_from_args();
    println!(
        "{:>8} | {:>12} {:>12} | {:>9} {:>9} | {:>9} {:>9}",
        "bench", "ANB krn%", "DAMON krn%", "ANB slow%", "DMN slow%", "ANB p99%", "DMN p99%"
    );
    println!("{:-<84}", "");
    let mut rows = Vec::new();
    for bench in main_benchmarks() {
        let row = measure(bench, accesses);
        let p99s = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:+.1}"));
        println!(
            "{:>8} | {:>12.0} {:>12.0} | {:>9.2} {:>9.2} | {:>9} {:>9}",
            row.bench.label(),
            row.anb_kernel_pct,
            row.damon_kernel_pct,
            row.anb_slowdown_pct,
            row.damon_slowdown_pct,
            p99s(row.anb_p99_pct),
            p99s(row.damon_p99_pct),
        );
        rows.push(row);
    }
    println!("{:-<84}", "");
    let avg = |f: fn(&Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    let max = |f: fn(&Row) -> f64| rows.iter().map(f).fold(0.0, f64::max);
    println!(
        "ANB   kernel inflation: avg {:.0}%, max {:.0}%  (paper: avg 159%, max 487%)",
        avg(|r| r.anb_kernel_pct),
        max(|r| r.anb_kernel_pct)
    );
    println!(
        "DAMON kernel inflation: avg {:.0}%, max {:.0}%  (paper: avg 277%, max 733%)",
        avg(|r| r.damon_kernel_pct),
        max(|r| r.damon_kernel_pct)
    );
    println!(
        "exec-time inflation maxima: ANB {:.1}% / DAMON {:.1}%  (paper: 4.6% SSSP / 8.6% lib.)",
        max(|r| r.anb_slowdown_pct),
        max(|r| r.damon_slowdown_pct)
    );
    if let Some(r) = rows.iter().find(|r| r.bench == Benchmark::Redis) {
        println!(
            "Redis p99 inflation: ANB {}%, DAMON {}%  (paper: +34% / +39%)",
            r.anb_p99_pct.map_or(0.0, |x| x.round()),
            r.damon_p99_pct.map_or(0.0, |x| x.round())
        );
    }
}
