//! Figure 10 — CDF of per-4KiB-page access counts, collected with PAC.
//!
//! Expected shape: roms is the most skewed (its p90/p95/p99 pages see
//! ≈2×/8×/17× the accesses of the p50 page); Liblinear is also heavily
//! skewed; TC and Redis are nearly flat (which is why precision buys
//! little there — the §7.2 migration-amortization argument: moving a page
//! costs ~54 µs ≈ 318 CXL-vs-DDR access savings).

use cxl_sim::system::NoMigration;
use m5_bench::{access_budget_from_args, attach_pac, banner, main_benchmarks, standard_system};
use m5_profilers::pac::Pac;

fn main() {
    banner(
        "Figure 10",
        "CDF of per-page access counts (PAC, log10 bins)",
    );
    let accesses = access_budget_from_args();
    println!(
        "{:>8} | {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} | {:>8} {:>8} {:>8}",
        "bench",
        "<=1e0",
        "<=1e1",
        "<=1e2",
        "<=1e3",
        "<=1e4",
        "<=1e5",
        "p90/p50",
        "p95/p50",
        "p99/p50"
    );
    println!("{:-<92}", "");
    for bench in main_benchmarks() {
        let spec = bench.spec();
        let (mut sys, region) = standard_system(&spec);
        let pac_handle = attach_pac(&mut sys);
        let mut wl = spec.build(region.base, accesses, 10);
        let _ = cxl_sim::system::run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);
        let pac: &Pac = sys.device(pac_handle).expect("PAC attached");
        let mut counts: Vec<u64> = pac.iter_counts().map(|(_, c)| c).collect();
        counts.sort_unstable();
        let n = counts.len().max(1);
        let cdf_at = |bound: u64| counts.partition_point(|&c| c <= bound) as f64 / n as f64;
        let pct = |p: f64| counts[((n - 1) as f64 * p) as usize] as f64;
        let p50 = pct(0.50).max(1.0);
        println!(
            "{:>8} | {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} | {:>8.1} {:>8.1} {:>8.1}",
            bench.label(),
            cdf_at(1),
            cdf_at(10),
            cdf_at(100),
            cdf_at(1_000),
            cdf_at(10_000),
            cdf_at(100_000),
            pct(0.90) / p50,
            pct(0.95) / p50,
            pct(0.99) / p50,
        );
    }
    println!("{:-<92}", "");
    println!(
        "paper anchors: roms p90/p95/p99 ≈ 2x/8x/17x of p50; lib. strongly skewed;\n\
         tc / redis nearly flat (bottom-p50 TC page ≈ bottom-p10 + 288 accesses)."
    );
}
