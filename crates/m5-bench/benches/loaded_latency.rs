//! Loaded-latency sweep figure: throughput and loaded latency versus
//! offered CXL-link load, plus the migration-storm backpressure figure.
//!
//! Runs the Zipf (Mcf) golden workload once per background-load point on
//! a contention-enabled machine and once on the fixed-cost machine (the
//! flat reference), then measures the storm figure both ways. Writes
//! `BENCH_loaded_latency.json` (override with `--out PATH`) — the
//! artifact CI uploads.
//!
//! `--quick` shrinks the per-point access budget for CI smoke runs;
//! `--accesses N` overrides it explicitly.

use m5_bench::golden::GOLDENS;
use m5_bench::loaded::{self, SWEEP_BACKGROUNDS};

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let accesses: u64 = arg_value("--accesses")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            if std::env::args().any(|a| a == "--quick") {
                100_000
            } else {
                1_000_000
            }
        });
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_loaded_latency.json".into());

    m5_bench::banner(
        "loaded-latency",
        "throughput vs offered CXL load, and migration-storm backpressure",
    );
    let g = &GOLDENS[2]; // spec (Zipf Mcf): the steady access mix
    let on = loaded::sweep(g.benchmark, g.seed, accesses, &SWEEP_BACKGROUNDS, true);
    let off = loaded::sweep(g.benchmark, g.seed, accesses, &SWEEP_BACKGROUNDS, false);

    println!(
        "{:>10} {:>14} {:>18} {:>16} {:>12}",
        "background", "sim acc/s", "loaded latency ns", "utilization", "(off acc/s)"
    );
    for (p, q) in on.iter().zip(off.iter()) {
        println!(
            "{:>10.2} {:>14.0} {:>18} {:>16.3} {:>12.0}",
            p.background,
            p.sim_accesses_per_sec(),
            p.loaded_latency.0,
            p.utilization,
            q.sim_accesses_per_sec()
        );
    }

    let storm = loaded::migration_storm(true);
    let storm_off = loaded::migration_storm(false);
    println!();
    println!(
        "migration storm (contended):   calm {:>8.1} ns  storm {:>8.1} ns  \
         backpressure {:>8.1} ns  ({} pages moved)",
        storm.calm_avg_ns,
        storm.storm_avg_ns,
        storm.backpressure_ns(),
        storm.migrated
    );
    println!(
        "migration storm (fixed-cost):  calm {:>8.1} ns  storm {:>8.1} ns  \
         backpressure {:>8.1} ns",
        storm_off.calm_avg_ns,
        storm_off.storm_avg_ns,
        storm_off.backpressure_ns()
    );

    let json = loaded::render_json(&on, &off, &storm);
    std::fs::write(&out_path, &json).expect("write loaded-latency json");
    println!("wrote {out_path}");
}
