//! Ablations — design choices the paper motivates but does not sweep,
//! isolated one at a time on the roms workload (the most
//! precision-rewarding benchmark) plus Redis for the sparse-page cases:
//!
//! 1. **Migration cache pollution** on/off (§4.1's argument for why
//!    migrating sparse pages hurts).
//! 2. **Daemon co-location** (paper methodology) vs an isolated core —
//!    how much of the CPU-driven overhead is interference.
//! 3. **Elector feedback** (Algorithm 1) vs blind fixed-period migration.
//! 4. **HPT query cadence** — the paper notes precision improves as the
//!    Elector queries more often.

use cxl_sim::prelude::*;
use cxl_sim::report::RunReport;
use cxl_sim::system::{run, MigrationDaemon, NoMigration};
use m5_baselines::damon::{Damon, DamonConfig};
use m5_bench::{access_budget_from_args, banner};
use m5_core::manager::elector::ElectorConfig;
use m5_core::manager::{M5Config, M5Manager};
use m5_core::policy;
use m5_workloads::registry::Benchmark;

fn run_custom(
    bench: Benchmark,
    accesses: u64,
    config: SystemConfig,
    daemon: &mut dyn MigrationDaemon,
) -> RunReport {
    let spec = bench.spec();
    let mut sys = System::new(
        config
            .with_cxl_frames(spec.footprint_pages + 1024)
            .with_ddr_frames(spec.footprint_pages / 2),
    );
    let region = sys
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .expect("fits");
    let mut wl = spec.build(region.base, accesses + 1024, 17);
    run(&mut sys, &mut wl, daemon, accesses)
}

fn main() {
    banner(
        "Ablations",
        "isolating the design choices DESIGN.md calls out",
    );
    let accesses = access_budget_from_args();

    // 1. Migration cache pollution.
    println!("\n[1] migration cache pollution (redis, DAMON — the sparse-page victim)");
    for (label, pollute) in [("pollution on (default)", true), ("pollution off", false)] {
        let mut cfg = SystemConfig::scaled_default();
        cfg.migration_pollutes_cache = pollute;
        let r = run_custom(
            Benchmark::Redis,
            accesses,
            cfg,
            &mut Damon::new(DamonConfig::default()),
        );
        println!(
            "  {label:>24}: total {} | llc hit rate {:.1}%",
            r.total_time,
            100.0 * r.llc_hits as f64 / (r.llc_hits + r.llc_misses).max(1) as f64
        );
    }

    // 2. Daemon co-location.
    println!("\n[2] daemon placement (roms, DAMON)");
    for (label, isolated) in [("co-located (paper)", false), ("isolated core", true)] {
        let cfg = if isolated {
            SystemConfig::scaled_default().with_isolated_daemon()
        } else {
            SystemConfig::scaled_default()
        };
        let r = run_custom(
            Benchmark::Roms,
            accesses,
            cfg,
            &mut Damon::new(DamonConfig::default()),
        );
        println!(
            "  {label:>24}: total {} | kernel billed {}",
            r.total_time,
            r.kernel.total()
        );
    }

    // 3. Elector feedback vs blind periodic migration.
    println!("\n[3] Elector feedback (roms, M5-HPT)");
    {
        let r = run_custom(
            Benchmark::Roms,
            accesses,
            SystemConfig::scaled_default(),
            &mut M5Manager::new(policy::simple_hpt_policy()),
        );
        println!(
            "  {:>24}: total {} | promotions {}",
            "Algorithm 1 (default)", r.total_time, r.migrations.promotions
        );
        // Blind: a flat period, migrate every epoch (disable the feedback
        // by keeping the minimum == maximum period and a constant fscale).
        let mut blind = policy::simple_hpt_policy();
        blind.elector = ElectorConfig {
            f_default_hz: 500.0,
            fscale: m5_core::manager::elector::FScale::Power { n: 0.0 },
            min_period: Nanos::from_millis(2),
            max_period: Nanos::from_millis(2),
            cold_start_ratio: 1.1,
            ..ElectorConfig::default()
        };
        let r = run_custom(
            Benchmark::Roms,
            accesses,
            SystemConfig::scaled_default(),
            &mut M5Manager::new(blind),
        );
        println!(
            "  {:>24}: total {} | promotions {}",
            "blind 2ms period", r.total_time, r.migrations.promotions
        );
    }

    // 4. Query cadence.
    println!("\n[4] HPT query cadence (roms, M5-HPT; min period sweep)");
    for min_us in [200u64, 500, 2000, 8000] {
        let mut cfg: M5Config = policy::simple_hpt_policy();
        cfg.elector.min_period = Nanos::from_micros(min_us);
        cfg.elector.max_period = cfg.elector.max_period.max(cfg.elector.min_period);
        let r = run_custom(
            Benchmark::Roms,
            accesses,
            SystemConfig::scaled_default(),
            &mut M5Manager::new(cfg),
        );
        println!(
            "  {:>20}us: total {} | promotions {}",
            min_us, r.total_time, r.migrations.promotions
        );
    }

    // 5. §9 synergy analysis: IFMM word swapping vs page migration vs the
    //    hybrid, on a sparse-page (redis) and a dense-page (cactu) trace.
    println!("\n[5] IFMM (flat memory mode) vs page migration vs hybrid (fast-hit fraction)");
    for bench in [Benchmark::Redis, Benchmark::CactuBssn] {
        let spec = bench.spec();
        let trace = m5_bench::collect_trace(&spec, accesses.min(2_000_000), accesses as usize, 21);
        let cmp = m5_baselines::ifmm::compare(&trace, (spec.footprint_pages / 2) as usize);
        println!(
            "  {:>8}: ifmm {:.3} | oracle paging {:.3} | hybrid {:.3} | swaps {}",
            bench.label(),
            cmp.ifmm_fast_fraction,
            cmp.paging_fast_fraction,
            cmp.hybrid_fast_fraction,
            cmp.ifmm_swaps
        );
    }

    // 6. Tracker-family comparison at matched N: all three §5.1 streaming
    //    families plus the Mithril-style grouped variant, trace-level
    //    precision on mcf (the Figure 7 protocol).
    println!("\n[6] tracker families at N = 2048 (mcf trace, HPT epochs, K = 5)");
    {
        use m5_trackers::mithril::MithrilTopK;
        use m5_trackers::topk::{CmSketchTopK, SpaceSavingTopK, StickySamplingTopK, TopKAlgorithm};
        let trace = m5_bench::collect_trace(
            &Benchmark::Mcf.spec(),
            accesses.min(4_000_000),
            accesses as usize,
            23,
        );
        let period = Nanos::from_millis(50);
        let mut trackers: Vec<Box<dyn TopKAlgorithm>> = vec![
            Box::new(CmSketchTopK::with_total_entries(4, 2048, 5, 1)),
            Box::new(SpaceSavingTopK::new(2048, 5)),
            Box::new(MithrilTopK::new(2048, 16, 5, 1)),
            Box::new(StickySamplingTopK::new(2048, 5, 2048, 1)),
        ];
        for t in &mut trackers {
            let name = t.name();
            let r = m5_bench::epoch_ratio(&trace, |l| l.pfn().0, t.as_mut(), 5, period);
            println!("  {name:>16}: {r:.3}");
        }
    }

    // 7. PAC scalability mode 1 (§3): the SRAM as a counter cache — exact
    //    counting preserved, writeback traffic grows as capacity shrinks.
    println!("\n[7] PAC counter-cache: writeback traffic vs SRAM capacity (mcf)");
    {
        use cxl_sim::memory::CXL_BASE_PFN;
        use m5_profilers::counter_cache::CachedPac;
        let spec = Benchmark::Mcf.spec();
        let trace = m5_bench::collect_trace(&spec, accesses.min(2_000_000), accesses as usize, 29);
        for capacity in [8192usize, 2048, 512, 128] {
            let mut pac = CachedPac::new(cxl_sim::addr::Pfn(CXL_BASE_PFN), capacity);
            use cxl_sim::controller::CxlDevice;
            for r in &trace {
                pac.on_access(r.line, r.is_write, r.ts);
            }
            println!(
                "  capacity {capacity:>6}: hit rate {:>5.1}% | {:>8} D2H/D2D writebacks for {} accesses",
                100.0 * pac.cache().hits() as f64
                    / (pac.cache().hits() + pac.cache().misses()).max(1) as f64,
                pac.cache().writebacks(),
                pac.total_counted()
            );
        }
    }

    // Reference points.
    println!("\n[ref] no migration");
    for bench in [Benchmark::Roms, Benchmark::Redis] {
        let r = run_custom(
            bench,
            accesses,
            SystemConfig::scaled_default(),
            &mut NoMigration,
        );
        println!("  {:>8}: total {}", bench.label(), r.total_time);
    }
}
