//! Wall-clock throughput bench: accesses/sec of the hot access pipeline.
//!
//! Six suites:
//!
//! * **golden** — the three golden workloads (`m5_bench::golden::GOLDENS`)
//!   driven through the standard machine with the M5 manager and an
//!   *enabled* telemetry bus, exactly like the golden differential harness.
//!   This is the instrumented end-to-end pipeline the figure benches pay
//!   for on every run. The simulate side (`drive` + `finish`) is timed
//!   inside the overlapped driver, so `gen_ns + sim_ns == wall_ns` holds
//!   exactly and `accesses_per_sec` stays simulation-only — comparable
//!   across baselines without double-counting the overlapped generation.
//! * **sharded** — the same three goldens with the machine split into
//!   `--shards` simulation shards (default: available parallelism), the
//!   core-sharded engine's end-to-end cost. Byte-identical results to
//!   **golden** by construction; only the wall clock may differ.
//! * **scaling** — the graph golden at shard counts 1/2/4/8 regardless of
//!   `--shards`: the scaling curve CI archives per run
//!   (`scaling_graph_s<N>` suites; also `--scaling-out PATH` for a
//!   stand-alone text artifact).
//! * **gen** — workload generation alone: record the trace, then drain it
//!   through `fill_chunk` into reusable chunks. The producer half of the
//!   overlapped pipeline, isolated.
//! * **loaded_off** — the loaded-latency sweep's driver (Zipf workload
//!   under the `MonitorOnly` heartbeat) on the fixed-cost machine, so the
//!   gate covers the sweep path with contention-off numbers that stay
//!   comparable across machines.
//! * **micro** — a random-access stream with no daemon and telemetry
//!   disabled: the bare `System::access` path.
//!
//! Writes `BENCH_throughput.json` (override with `--out PATH`) so CI can
//! track the performance trajectory. With `--check BASELINE.json` it
//! prints a per-suite delta table against the committed baseline and
//! exits non-zero if any suite regresses more than 20 %. With `--stages`
//! the staged batch engine's per-pass wall-time breakdown
//! (translate/LLC/bill/tracker) is recorded per chunked suite.
//!
//! JSON schema, one suite object per line (the `--check` parser is
//! line-based and expects `accesses_per_sec` last on the line). The
//! top-level `"shards"` key records the `--shards` value the run used, so
//! archived artifacts are self-describing:
//!
//! ```text
//! {"name": str,             suite identifier
//!  "accesses": u64,         simulated accesses per rep
//!  "wall_ns": u128,         best rep's total wall time; == gen_ns + sim_ns
//!  "gen_ns": u128,          generation + driver overhead not hidden by overlap
//!  "sim_ns": u128,          simulate-side wall time (0 for gen-only suites)
//!  "stages": {...}?,        only with --stages on chunked suites:
//!                           translate/llc/bill/tracker ns, blocks,
//!                           staged_accesses
//!  "shards": usize?,        only on sharded/scaling suites: shard count
//!  "accesses_per_sec": f64} accesses / sim_ns (per wall_ns if sim_ns == 0)
//! ```

use cxl_sim::chunk::AccessChunk;
use cxl_sim::prelude::*;
use cxl_sim::system::{StageTimes, DEFAULT_CHUNK_ACCESSES};
use m5_bench::golden::GOLDENS;
use m5_bench::pipeline::run_overlapped_timed;
use m5_core::manager::{M5Config, M5Manager};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One measured suite: name, accesses executed, and the best rep's wall
/// time split into its generate/simulate halves (`wall_ns == gen_ns +
/// sim_ns`; either half may be zero for suites that only exercise one).
struct Measurement {
    name: String,
    accesses: u64,
    wall_ns: u128,
    gen_ns: u128,
    sim_ns: u128,
    /// Staged-engine pass breakdown of the best rep (`--stages`, chunked
    /// suites only).
    stages: Option<StageTimes>,
    /// Simulation shard count (sharded/scaling suites only).
    shards: Option<usize>,
}

impl Measurement {
    /// Simulation throughput: per simulate-side time when the suite has a
    /// simulate half, per total wall time for generation-only suites.
    fn accesses_per_sec(&self) -> f64 {
        let ns = if self.sim_ns > 0 {
            self.sim_ns
        } else {
            self.wall_ns
        };
        if ns == 0 {
            return 0.0;
        }
        self.accesses as f64 / (ns as f64 / 1e9)
    }
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Measures one golden workload end to end at `shards` simulation
/// shards: the M5 manager, an enabled telemetry bus, and the overlapped
/// driver — exactly the golden differential harness, timed. `shards ==
/// 1` is the sequential staged engine; higher counts exercise the
/// core-sharded engine. Results are byte-identical either way — only the
/// wall clock may move.
fn measure_golden(
    g: &m5_bench::golden::GoldenSpec,
    name: String,
    accesses: u64,
    reps: u32,
    stages: bool,
    shards: usize,
) -> Measurement {
    let spec = g.benchmark.spec();
    // (sim, wall, stage breakdown) of the rep with the best simulate
    // time — wall and gen are taken from the same rep so the wall =
    // gen + sim invariant holds per measurement.
    let mut best: Option<(u128, u128, Option<StageTimes>)> = None;
    for _ in 0..reps {
        let (mut sys, region) = m5_bench::standard_system(&spec);
        sys.install_telemetry(Telemetry::enabled());
        sys.set_sim_shards(shards);
        if stages {
            sys.enable_stage_timing();
        }
        let t0 = Instant::now();
        let mut wl = spec.build(region.base, accesses, g.seed);
        let mut m5 = M5Manager::new(M5Config::default());
        let (report, sim) = run_overlapped_timed(&mut sys, &mut wl, &mut m5, accesses);
        let wall = t0.elapsed().as_nanos();
        assert_eq!(report.accesses, accesses, "workload ended early");
        if best.as_ref().is_none_or(|(s, _, _)| sim < *s) {
            best = Some((sim, wall, sys.stage_times().copied()));
        }
    }
    let (sim, wall, st) = best.expect("reps >= 1");
    Measurement {
        name,
        accesses,
        wall_ns: wall,
        gen_ns: wall - sim,
        sim_ns: sim,
        stages: st,
        shards: (shards > 1).then_some(shards),
    }
}

fn golden_suite(accesses: u64, reps: u32, stages: bool) -> Vec<Measurement> {
    GOLDENS
        .iter()
        .map(|g| measure_golden(g, format!("golden_{}", g.name), accesses, reps, stages, 1))
        .collect()
}

/// The three goldens through the core-sharded engine at the `--shards`
/// count the run was invoked with.
fn sharded_suite(accesses: u64, reps: u32, stages: bool, shards: usize) -> Vec<Measurement> {
    GOLDENS
        .iter()
        .map(|g| {
            let mut m = measure_golden(
                g,
                format!("sharded_{}", g.name),
                accesses,
                reps,
                stages,
                shards,
            );
            // Record the count even at 1 — a sharded suite is
            // self-describing by definition.
            m.shards = Some(shards);
            m
        })
        .collect()
}

/// The scaling curve: the graph golden at fixed shard counts, regardless
/// of `--shards`, so the suite names in the JSON (and therefore the
/// regression-gate matching) stay stable across hosts.
fn scaling_suite(accesses: u64, reps: u32) -> Vec<Measurement> {
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|n| {
            let mut m = measure_golden(
                &GOLDENS[0],
                format!("scaling_graph_s{n}"),
                accesses,
                reps,
                false,
                n,
            );
            m.shards = Some(n);
            m
        })
        .collect()
}

/// Generation-only suites: record the trace and stream it through
/// `fill_chunk` into a reusable chunk — the exact producer work the
/// overlapped driver hides behind simulation.
fn gen_suite(accesses: u64, reps: u32) -> Vec<Measurement> {
    GOLDENS
        .iter()
        .map(|g| {
            let spec = g.benchmark.spec();
            let base = cxl_sim::addr::VirtAddr(1 << 30);
            let mut best = u128::MAX;
            let mut chunk = AccessChunk::with_capacity(DEFAULT_CHUNK_ACCESSES);
            for _ in 0..reps {
                let t0 = Instant::now();
                let mut wl = spec.build(base, accesses, g.seed);
                let mut drained = 0u64;
                loop {
                    chunk.clear();
                    let n = wl.fill_chunk(&mut chunk);
                    if n == 0 {
                        break;
                    }
                    drained += n as u64;
                }
                let wall = t0.elapsed().as_nanos();
                // Generators may overshoot by the tail of the last op.
                assert!(drained >= accesses, "trace shorter than budget");
                best = best.min(wall);
            }
            Measurement {
                name: format!("gen_{}", g.name),
                accesses,
                wall_ns: best,
                gen_ns: best,
                sim_ns: 0,
                stages: None,
                shards: None,
            }
        })
        .collect()
}

/// The loaded-latency sweep's driver with contention **off**: the Zipf
/// golden workload under the `MonitorOnly` heartbeat on the fixed-cost
/// machine. This is the wall-clock cost of the sweep harness itself
/// (window rollovers included, queueing excluded), so the regression gate
/// covers the loaded-latency path with numbers that stay comparable
/// across machines regardless of contention parameters.
fn loaded_off_suite(accesses: u64, reps: u32, stages: bool) -> Measurement {
    let g = &GOLDENS[2];
    let spec = g.benchmark.spec();
    let mut best: Option<(u128, Option<StageTimes>)> = None;
    for _ in 0..reps {
        let (mut sys, region) = m5_bench::standard_system(&spec);
        if stages {
            sys.enable_stage_timing();
        }
        let mut wl = spec.build(region.base, accesses, g.seed);
        let mut daemon = m5_bench::loaded::MonitorOnly::new(Nanos::from_micros(100));
        let t0 = Instant::now();
        let report = cxl_sim::system::run(&mut sys, &mut wl, &mut daemon, accesses);
        let wall = t0.elapsed().as_nanos();
        assert_eq!(report.accesses, accesses, "workload ended early");
        if best.as_ref().is_none_or(|(w, _)| wall < *w) {
            best = Some((wall, sys.stage_times().copied()));
        }
    }
    let (wall, st) = best.expect("reps >= 1");
    Measurement {
        name: "loaded_off".into(),
        accesses,
        wall_ns: wall,
        gen_ns: 0,
        sim_ns: wall,
        stages: st,
        shards: None,
    }
}

fn micro_suite(accesses: u64, reps: u32) -> Measurement {
    let pages = 4096u64;
    let mut rng = SmallRng::seed_from_u64(5);
    let addrs: Vec<u64> = (0..65_536)
        .map(|_| rng.gen_range(0..pages * 4096))
        .collect();
    let mut best = u128::MAX;
    for _ in 0..reps {
        let mut sys = System::new(
            SystemConfig::scaled_default()
                .with_cxl_frames(pages + 64)
                .with_ddr_frames(pages),
        );
        let region = sys
            .alloc_region(pages, Placement::AllOnCxl)
            .expect("CXL sized to fit");
        let t0 = Instant::now();
        let mut i = 0usize;
        for _ in 0..accesses {
            let a = addrs[i];
            i = (i + 1) & (addrs.len() - 1);
            std::hint::black_box(sys.access(region.base.offset(a), false));
        }
        best = best.min(t0.elapsed().as_nanos());
    }
    Measurement {
        name: "micro_random".into(),
        accesses,
        wall_ns: best,
        gen_ns: 0,
        sim_ns: best,
        stages: None,
        shards: None,
    }
}

fn render_json(ms: &[Measurement], run_shards: usize) -> String {
    let mut out = format!("{{\n  \"shards\": {run_shards},\n  \"suites\": [\n");
    for (i, m) in ms.iter().enumerate() {
        // `stages` and `shards` (when present) must come before
        // `accesses_per_sec`: the line-based `--check` parser takes
        // everything after the `accesses_per_sec` key up to the line's
        // closing braces.
        let stages = m.stages.map_or(String::new(), |s| {
            format!(
                "\"stages\": {{\"translate_ns\": {}, \"llc_ns\": {}, \
                 \"bill_ns\": {}, \"tracker_ns\": {}, \"blocks\": {}, \
                 \"staged_accesses\": {}}}, ",
                s.translate_ns, s.llc_ns, s.bill_ns, s.tracker_ns, s.blocks, s.staged_accesses
            )
        });
        let shards = m
            .shards
            .map_or(String::new(), |n| format!("\"shards\": {n}, "));
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"accesses\": {}, \"wall_ns\": {}, \
             \"gen_ns\": {}, \"sim_ns\": {}, {}{}\
             \"accesses_per_sec\": {:.0}}}{}\n",
            m.name,
            m.accesses,
            m.wall_ns,
            m.gen_ns,
            m.sim_ns,
            stages,
            shards,
            m.accesses_per_sec(),
            if i + 1 < ms.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The stand-alone scaling artifact (`--scaling-out`): one
/// `shards accesses_per_sec` line per scaling point.
fn render_scaling(ms: &[Measurement]) -> String {
    let mut out = String::from("# shards accesses_per_sec (graph golden, sim-only)\n");
    for m in ms.iter().filter(|m| m.name.starts_with("scaling_")) {
        out.push_str(&format!(
            "{} {:.0}\n",
            m.shards.unwrap_or(1),
            m.accesses_per_sec()
        ));
    }
    out
}

/// Extracts `(name, accesses_per_sec)` pairs from the bench's own JSON
/// (a full parser is overkill for a format we also write).
fn parse_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = line
            .split("\"name\": \"")
            .nth(1)
            .and_then(|s| s.split('"').next())
        else {
            continue;
        };
        let Some(aps) = line
            .split("\"accesses_per_sec\": ")
            .nth(1)
            .and_then(|s| s.trim_end_matches(['}', ',', ' ']).parse::<f64>().ok())
        else {
            continue;
        };
        out.push((name.to_string(), aps));
    }
    out
}

/// Prints the per-suite delta table and returns the list of >20 %
/// regressions (suites new since the baseline are shown but never fail).
fn check_against(baseline_path: &str, ms: &[Measurement]) -> Result<(), Vec<String>> {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let baseline = parse_json(&text);
    let mut failures = Vec::new();
    println!();
    println!(
        "{:<16} {:>16} {:>16} {:>9}",
        "suite", "baseline acc/s", "current acc/s", "delta"
    );
    for m in ms {
        let base_aps = baseline
            .iter()
            .find(|(name, _)| name == &m.name)
            .map(|(_, aps)| *aps);
        let got = m.accesses_per_sec();
        match base_aps {
            Some(base) if base > 0.0 => {
                let delta = (got / base - 1.0) * 100.0;
                println!(
                    "{:<16} {:>16.0} {:>16.0} {:>+8.1}%",
                    m.name, base, got, delta
                );
                if got < base * 0.80 {
                    failures.push(format!(
                        "suite '{}' regressed: {got:.0} accesses/s vs baseline \
                         {base:.0} ({delta:.1}%, limit -20%)",
                        m.name
                    ));
                }
            }
            _ => println!("{:<16} {:>16} {:>16.0} {:>9}", m.name, "(new)", got, "-"),
        }
    }
    for (name, _) in &baseline {
        if !ms.iter().any(|m| &m.name == name) {
            failures.push(format!("suite '{name}' missing from this run"));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

fn main() {
    let accesses: u64 = arg_value("--accesses")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let reps: u32 = arg_value("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_throughput.json".into());
    let stages = std::env::args().any(|a| a == "--stages");
    let shards: usize = arg_value("--shards")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(rayon::current_num_threads)
        .max(1);
    rayon::set_num_threads(shards.max(8)); // wide enough for the s8 scaling point

    m5_bench::banner(
        "throughput",
        "wall-clock accesses/sec of the access pipeline",
    );
    let mut ms = golden_suite(accesses, reps, stages);
    ms.extend(sharded_suite(accesses, reps, stages, shards));
    ms.extend(scaling_suite(accesses, reps));
    ms.extend(gen_suite(accesses, reps));
    ms.push(loaded_off_suite(accesses, reps, stages));
    ms.push(micro_suite(accesses, reps));
    for m in &ms {
        println!(
            "{:<16} {:>12} accesses  {:>12} ns (gen {:>12} / sim {:>12})  {:>10.2} M accesses/s",
            m.name,
            m.accesses,
            m.wall_ns,
            m.gen_ns,
            m.sim_ns,
            m.accesses_per_sec() / 1e6
        );
        if let Some(s) = m.stages {
            println!(
                "{:<16} stages: translate {} ns / llc {} ns / bill {} ns / \
                 tracker {} ns over {} blocks ({} staged accesses)",
                "", s.translate_ns, s.llc_ns, s.bill_ns, s.tracker_ns, s.blocks, s.staged_accesses
            );
        }
    }

    let json = render_json(&ms, shards);
    std::fs::write(&out_path, &json).expect("write throughput json");
    println!("wrote {out_path}");
    if let Some(path) = arg_value("--scaling-out") {
        std::fs::write(&path, render_scaling(&ms)).expect("write scaling artifact");
        println!("wrote {path}");
    }

    if let Some(baseline) = arg_value("--check") {
        match check_against(&baseline, &ms) {
            Ok(()) => println!("within 20% of baseline {baseline}"),
            Err(failures) => {
                for f in &failures {
                    eprintln!("REGRESSION: {f}");
                }
                std::process::exit(1);
            }
        }
    }
}
