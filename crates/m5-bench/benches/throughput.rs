//! Wall-clock throughput bench: accesses/sec of the hot access pipeline.
//!
//! Two suites:
//!
//! * **golden** — the three golden workloads (`m5_bench::golden::GOLDENS`)
//!   driven through the standard machine with the M5 manager and an
//!   *enabled* telemetry bus, exactly like the golden differential harness.
//!   This is the instrumented end-to-end pipeline the figure benches pay
//!   for on every run.
//! * **micro** — a random-access stream with no daemon and telemetry
//!   disabled: the bare `System::access` path.
//!
//! Writes `BENCH_throughput.json` (override with `--out PATH`) so CI can
//! track the performance trajectory, and with `--check BASELINE.json`
//! exits non-zero if any suite regresses more than 20 % against the
//! committed baseline.

use cxl_sim::prelude::*;
use cxl_sim::system::run;
use m5_bench::golden::GOLDENS;
use m5_core::manager::{M5Config, M5Manager};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One measured suite: name, accesses executed, best wall time observed.
struct Measurement {
    name: String,
    accesses: u64,
    best_wall_ns: u128,
}

impl Measurement {
    fn accesses_per_sec(&self) -> f64 {
        if self.best_wall_ns == 0 {
            return 0.0;
        }
        self.accesses as f64 / (self.best_wall_ns as f64 / 1e9)
    }
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn golden_suite(accesses: u64, reps: u32) -> Vec<Measurement> {
    GOLDENS
        .iter()
        .map(|g| {
            let spec = g.benchmark.spec();
            let mut best = u128::MAX;
            for _ in 0..reps {
                let (mut sys, region) = m5_bench::standard_system(&spec);
                sys.install_telemetry(Telemetry::enabled());
                let mut wl = spec.build(region.base, accesses, g.seed);
                let mut m5 = M5Manager::new(M5Config::default());
                let t0 = Instant::now();
                let report = run(&mut sys, &mut wl, &mut m5, accesses);
                let wall = t0.elapsed().as_nanos();
                assert_eq!(report.accesses, accesses, "workload ended early");
                best = best.min(wall);
            }
            Measurement {
                name: format!("golden_{}", g.name),
                accesses,
                best_wall_ns: best,
            }
        })
        .collect()
}

fn micro_suite(accesses: u64, reps: u32) -> Measurement {
    let pages = 4096u64;
    let mut rng = SmallRng::seed_from_u64(5);
    let addrs: Vec<u64> = (0..65_536)
        .map(|_| rng.gen_range(0..pages * 4096))
        .collect();
    let mut best = u128::MAX;
    for _ in 0..reps {
        let mut sys = System::new(
            SystemConfig::scaled_default()
                .with_cxl_frames(pages + 64)
                .with_ddr_frames(pages),
        );
        let region = sys
            .alloc_region(pages, Placement::AllOnCxl)
            .expect("CXL sized to fit");
        let t0 = Instant::now();
        let mut i = 0usize;
        for _ in 0..accesses {
            let a = addrs[i];
            i = (i + 1) & (addrs.len() - 1);
            std::hint::black_box(sys.access(region.base.offset(a), false));
        }
        best = best.min(t0.elapsed().as_nanos());
    }
    Measurement {
        name: "micro_random".into(),
        accesses,
        best_wall_ns: best,
    }
}

fn render_json(ms: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"suites\": [\n");
    for (i, m) in ms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"accesses\": {}, \"wall_ns\": {}, \
             \"accesses_per_sec\": {:.0}}}{}\n",
            m.name,
            m.accesses,
            m.best_wall_ns,
            m.accesses_per_sec(),
            if i + 1 < ms.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `(name, accesses_per_sec)` pairs from the bench's own JSON
/// (a full parser is overkill for a format we also write).
fn parse_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = line
            .split("\"name\": \"")
            .nth(1)
            .and_then(|s| s.split('"').next())
        else {
            continue;
        };
        let Some(aps) = line
            .split("\"accesses_per_sec\": ")
            .nth(1)
            .and_then(|s| s.trim_end_matches(['}', ',', ' ']).parse::<f64>().ok())
        else {
            continue;
        };
        out.push((name.to_string(), aps));
    }
    out
}

fn check_against(baseline_path: &str, ms: &[Measurement]) -> Result<(), Vec<String>> {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let baseline = parse_json(&text);
    let mut failures = Vec::new();
    for (name, base_aps) in &baseline {
        let Some(m) = ms.iter().find(|m| &m.name == name) else {
            failures.push(format!("suite '{name}' missing from this run"));
            continue;
        };
        let got = m.accesses_per_sec();
        if got < base_aps * 0.80 {
            failures.push(format!(
                "suite '{name}' regressed: {got:.0} accesses/s vs baseline \
                 {base_aps:.0} (-{:.1}%, limit 20%)",
                (1.0 - got / base_aps) * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

fn main() {
    let accesses: u64 = arg_value("--accesses")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let reps: u32 = arg_value("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_throughput.json".into());

    m5_bench::banner(
        "throughput",
        "wall-clock accesses/sec of the access pipeline",
    );
    let mut ms = golden_suite(accesses, reps);
    ms.push(micro_suite(accesses, reps));
    for m in &ms {
        println!(
            "{:<16} {:>12} accesses  {:>12} ns  {:>10.2} M accesses/s",
            m.name,
            m.accesses,
            m.best_wall_ns,
            m.accesses_per_sec() / 1e6
        );
    }

    let json = render_json(&ms);
    std::fs::write(&out_path, &json).expect("write throughput json");
    println!("wrote {out_path}");

    if let Some(baseline) = arg_value("--check") {
        match check_against(&baseline, &ms) {
            Ok(()) => println!("within 20% of baseline {baseline}"),
            Err(failures) => {
                for f in &failures {
                    eprintln!("REGRESSION: {f}");
                }
                std::process::exit(1);
            }
        }
    }
}
