//! Figure 3 — Average access-count ratio of hot pages identified by ANB
//! and DAMON, scored against PAC's true top-K counts.
//!
//! Protocol (§4.1 S1–S5): both solutions run in record-only mode (they
//! log identified PFNs but never migrate) while every page of the
//! benchmark lives in CXL DRAM and PAC counts every access; the ratio is
//! sampled at several execution points to get min/mean/max.
//!
//! Expected shape: ratios below ~0.4 for most benchmarks (warm pages
//! identified as hot), DAMON ≥ ANB on average, with cactuBSSN, fotonik3d
//! and mcf as high outliers (their pages are uniformly hot, so any
//! identified page is a "true" hot page).

use m5_baselines::anb::{Anb, AnbConfig};
use m5_baselines::damon::{Damon, DamonConfig};
use m5_bench::{
    access_budget_from_args, attach_pac, banner, geomean, k_for, main_benchmarks,
    run_ratio_protocol, standard_system,
};

const POINTS: usize = 10;

fn main() {
    banner(
        "Figure 3",
        "average access-count ratio of ANB / DAMON hot pages vs PAC top-K",
    );
    let accesses = access_budget_from_args();
    println!(
        "{:>8} | {:>26} | {:>26}",
        "bench", "ANB mean [min,max]", "DAMON mean [min,max]"
    );
    println!("{:-<8}-+-{:-<26}-+-{:-<26}", "", "", "");

    let mut anb_means = Vec::new();
    let mut damon_means = Vec::new();
    for bench in main_benchmarks() {
        let spec = bench.spec();
        let k = k_for(&spec);
        let (_, region) = standard_system(&spec);
        let trace = spec.build(region.base, accesses + 1024, 3);

        // ANB, record-only.
        let (mut sys, _) = standard_system(&spec);
        let pac = attach_pac(&mut sys);
        let mut wl = trace.fresh();
        let mut anb = Anb::new(AnbConfig::record_only());
        let anb_ratio = run_ratio_protocol(
            &mut sys,
            &mut wl,
            &mut anb,
            pac,
            k,
            accesses,
            POINTS,
            |d: &Anb| d.hot_log().pfns().collect(),
        );

        // DAMON, record-only (fresh system, identical trace).
        let (mut sys, _) = standard_system(&spec);
        let pac = attach_pac(&mut sys);
        let mut wl = trace.fresh();
        let mut damon = Damon::new(DamonConfig::record_only());
        let damon_ratio = run_ratio_protocol(
            &mut sys,
            &mut wl,
            &mut damon,
            pac,
            k,
            accesses,
            POINTS,
            |d: &Damon| d.hot_log().pfns().collect(),
        );

        println!(
            "{:>8} | {:>10.3} [{:.3},{:.3}] | {:>10.3} [{:.3},{:.3}]",
            bench.label(),
            anb_ratio.mean(),
            anb_ratio.min(),
            anb_ratio.max(),
            damon_ratio.mean(),
            damon_ratio.min(),
            damon_ratio.max(),
        );
        anb_means.push(anb_ratio.mean());
        damon_means.push(damon_ratio.mean());
    }
    println!("{:-<66}", "");
    println!(
        "{:>8} | ANB mean of means: {:.3} (geo {:.3}) | DAMON: {:.3} (geo {:.3})",
        "mean",
        anb_means.iter().sum::<f64>() / anb_means.len() as f64,
        geomean(&anb_means),
        damon_means.iter().sum::<f64>() / damon_means.len() as f64,
        geomean(&damon_means),
    );
    println!(
        "paper anchors: ANB ≈ 0.21, DAMON ≈ 0.29 of top-K; both < 0.4 for most benchmarks;\n\
         cactuBSSN / fotonik3d / mcf are the high outliers."
    );
}
