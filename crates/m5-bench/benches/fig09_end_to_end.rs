//! Figure 9 — End-to-end performance of ANB, DAMON, M5(HPT), M5(HWT) and
//! M5(HPT+HWT), normalized to *no page migration*.
//!
//! Protocol (§7.2): every page starts in CXL DRAM; DDR holds half the
//! footprint; once DDR fills, each promotion batch demotes an equal
//! number of MGLRU-cold pages. Redis is scored by the inverse of its p99
//! latency; everything else by execution time. Every daemon replays the
//! same recorded trace.
//!
//! Expected shape: DAMON ≈ +6 % over ANB, ≈ +81 % over no migration; the
//! best M5 ≈ +14 % over DAMON (≈ 2× over no migration); DAMON *degrades*
//! Redis while ANB backs off at equilibrium and M5(HWT) wins it; roms
//! and Liblinear are M5's biggest wins; PR near parity.

use cxl_sim::report::RunReport;
use cxl_sim::system::{run, MigrationDaemon, NoMigration};
use m5_baselines::anb::{Anb, AnbConfig};
use m5_baselines::damon::{Damon, DamonConfig};
use m5_bench::{access_budget_from_args, banner, geomean, main_benchmarks, standard_system};
use m5_core::manager::M5Manager;
use m5_core::policy;
use m5_workloads::registry::Benchmark;

fn run_with(
    bench: Benchmark,
    trace: &m5_workloads::access::ReplayWorkload,
    accesses: u64,
    daemon: &mut dyn MigrationDaemon,
) -> RunReport {
    let spec = bench.spec();
    let (mut sys, _region) = standard_system(&spec);
    let mut wl = trace.fresh();
    run(&mut sys, &mut wl, daemon, accesses)
}

/// Normalized performance of `report` against `baseline`: inverse p99 for
/// latency-scored benchmarks, inverse runtime otherwise.
fn score(bench: Benchmark, report: &RunReport, baseline: &RunReport) -> f64 {
    if bench.scored_by_p99() {
        let b = baseline.p99().map(|n| n.0 as f64).unwrap_or(1.0);
        let r = report.p99().map(|n| n.0 as f64).unwrap_or(1.0);
        b / r
    } else {
        baseline.total_time.0 as f64 / report.total_time.0 as f64
    }
}

fn main() {
    banner(
        "Figure 9",
        "end-to-end performance normalized to no page migration",
    );
    let accesses = access_budget_from_args();
    let names = ["anb", "damon", "m5(hpt)", "m5(hwt)", "m5(hpt+hwt)"];
    println!(
        "{:>8} | {:>8} {:>8} {:>8} {:>8} {:>12}",
        "bench", names[0], names[1], names[2], names[3], names[4]
    );
    println!("{:-<66}", "");
    let mut per_daemon: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for bench in main_benchmarks() {
        // Generate each benchmark's trace once; every daemon replays the
        // identical stream.
        let spec = bench.spec();
        let (_, region) = standard_system(&spec);
        let trace = spec.build(region.base, accesses + 1024, 9);
        let baseline = run_with(bench, &trace, accesses, &mut NoMigration);
        let mut scores = Vec::with_capacity(5);
        for which in 0..5 {
            let report = match which {
                0 => run_with(bench, &trace, accesses, &mut Anb::new(AnbConfig::default())),
                1 => run_with(
                    bench,
                    &trace,
                    accesses,
                    &mut Damon::new(DamonConfig::default()),
                ),
                2 => run_with(
                    bench,
                    &trace,
                    accesses,
                    &mut M5Manager::new(policy::simple_hpt_policy()),
                ),
                3 => run_with(
                    bench,
                    &trace,
                    accesses,
                    &mut M5Manager::new(policy::simple_hwt_policy()),
                ),
                _ => run_with(
                    bench,
                    &trace,
                    accesses,
                    &mut M5Manager::new(policy::simple_hpt_hwt_policy()),
                ),
            };
            scores.push(score(bench, &report, &baseline));
        }
        println!(
            "{:>8} | {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>12.3}",
            bench.label(),
            scores[0],
            scores[1],
            scores[2],
            scores[3],
            scores[4]
        );
        for (i, s) in scores.iter().enumerate() {
            per_daemon[i].push(*s);
        }
    }
    println!("{:-<66}", "");
    print!("{:>8} |", "geomean");
    let means: Vec<f64> = per_daemon.iter().map(|v| geomean(v)).collect();
    println!(
        " {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>12.3}",
        means[0], means[1], means[2], means[3], means[4]
    );
    let m5_best = means[2].max(means[3]).max(means[4]);
    println!(
        "best M5 vs ANB {:+.0}%, vs DAMON {:+.0}%; DAMON vs ANB {:+.0}%",
        100.0 * (m5_best / means[0] - 1.0),
        100.0 * (m5_best / means[1] - 1.0),
        100.0 * (means[1] / means[0] - 1.0)
    );
    println!(
        "paper anchors: DAMON +6% over ANB, +81% over none; best M5 +14% over DAMON\n\
         (+106% over none); DAMON hurts redis (-16%) while ANB +8% and M5 +18-19%;\n\
         roms and lib. are M5's largest wins; pr near parity."
    );
}
