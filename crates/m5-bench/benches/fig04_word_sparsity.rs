//! Figure 4 — Probability that a 4 KiB page has at most N ∈
//! {4, 8, 16, 32, 48} unique 64 B words accessed, measured with WAC.
//!
//! Expected shape: the KV stores are overwhelmingly sparse (≤16 words in
//! ~86 % / 76 % / 74 % of pages for Redis / Memcached / CacheLib); the
//! SPEC benchmarks except roms are dense (≥48 words in ~87–92 % of
//! pages); GAP is mixed, with PR and SSSP mostly dense.

use cxl_sim::system::NoMigration;
use m5_bench::{access_budget_from_args, banner, standard_system};
use m5_profilers::wac::{Wac, WacConfig};
use m5_workloads::registry::Benchmark;

const THRESHOLDS: [u32; 5] = [4, 8, 16, 32, 48];

fn main() {
    banner(
        "Figure 4",
        "P(page has at most N unique 64B words accessed), by WAC",
    );
    let accesses = access_budget_from_args();
    println!(
        "{:>8} | {:>7} {:>7} {:>7} {:>7} {:>7} | pages",
        "bench", "<=4", "<=8", "<=16", "<=32", "<=48"
    );
    println!("{:-<70}", "");
    for bench in Benchmark::FIGURE4 {
        let spec = bench.spec();
        let (mut sys, region) = standard_system(&spec);
        let handle = sys.attach_device(Wac::new(WacConfig::covering_cxl(&sys)));
        let mut wl = spec.build(region.base, accesses, 4);
        let _ = cxl_sim::system::run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);
        let wac: &Wac = sys.device(handle).expect("WAC attached");
        let uniq = wac.unique_words_per_page();
        let total = uniq.len().max(1) as f64;
        let probs: Vec<f64> = THRESHOLDS
            .iter()
            .map(|&t| uniq.values().filter(|&&w| w <= t).count() as f64 / total)
            .collect();
        println!(
            "{:>8} | {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} | {}",
            bench.label(),
            probs[0],
            probs[1],
            probs[2],
            probs[3],
            probs[4],
            uniq.len()
        );
    }
    println!("{:-<70}", "");
    println!(
        "paper anchors: P(<=16 words) ≈ 0.86 / 0.76 / 0.74 for redis / mcd / c.-lib;\n\
         SPEC except roms: P(>=48 words) ≈ 0.87–0.92 (i.e. <=48 column near its complement);\n\
         GAP mixed: pr and sssp dense, lib./bc/bfs/cc/tc notably sparser."
    );
}
