//! Zipf sampler construction + draw micro-bench.
//!
//! The alias-table `ZipfSampler` claims two wins over the CDF
//! binary-search it replaced: construction is one incremental pass (the
//! linear sieve evaluates `powf` only at primes) and each draw is O(1).
//! This bench prints both, at the universe sizes the workload generators
//! actually use (key counts up to a few million).

use m5_workloads::dist::ZipfSampler;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    m5_bench::banner("zipf_build", "ZipfSampler construction and draw cost");
    const THETA: f64 = 0.99;
    const DRAWS: u64 = 10_000_000;
    println!(
        "{:>10} {:>14} {:>16} {:>14}",
        "n", "build (ms)", "draws/sec (M)", "checksum"
    );
    for n in [100_000u64, 1_000_000, 4_000_000] {
        let t0 = Instant::now();
        let z = ZipfSampler::new(n, THETA);
        let build = t0.elapsed();

        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0u64;
        let t1 = Instant::now();
        for _ in 0..DRAWS {
            sum = sum.wrapping_add(z.sample(&mut rng));
        }
        let draw = t1.elapsed();
        println!(
            "{:>10} {:>14.1} {:>16.1} {:>14}",
            n,
            build.as_secs_f64() * 1e3,
            DRAWS as f64 / draw.as_secs_f64() / 1e6,
            sum % 100_000
        );
    }
}
