//! §5.2 validation — read bandwidth is proportional to page placement.
//!
//! The Monitor's usefulness rests on the hypothesis that with random page
//! placement, `bw(DDR)/bw(CXL)` tracks `nr_pages(DDR)/nr_pages(CXL)`.
//! The paper validates with mcf at placement ratios 2, 1, and ½ and
//! measures bandwidth ratios 2.02, 0.919, 0.571.

use cxl_sim::memory::NodeId;
use cxl_sim::prelude::*;
use cxl_sim::system::NoMigration;
use m5_bench::{access_budget_from_args, banner};
use m5_workloads::registry::Benchmark;

fn main() {
    banner(
        "Section 5.2",
        "bw(DDR)/bw(CXL) vs nr_pages(DDR)/nr_pages(CXL) on mcf",
    );
    let accesses = access_budget_from_args();
    let spec = Benchmark::Mcf.spec();
    println!(
        "{:>12} | {:>12} | {:>12} | {:>8}",
        "pages ratio", "placed ratio", "bw ratio", "bw/pages"
    );
    println!("{:-<56}", "");
    for (label, ddr_fraction) in [("2", 2.0 / 3.0), ("1", 0.5), ("1/2", 1.0 / 3.0)] {
        let config = SystemConfig::scaled_default()
            .with_cxl_frames(spec.footprint_pages + 1024)
            .with_ddr_frames(spec.footprint_pages + 1024);
        let mut sys = System::new(config);
        let region = sys
            .alloc_region(
                spec.footprint_pages,
                Placement::Interleaved {
                    ddr_fraction,
                    seed: 0x5b2,
                },
            )
            .expect("both nodes sized to fit");
        let mut wl = spec.build(region.base, accesses, 6);
        let report = cxl_sim::system::run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);
        let pages_ratio = sys.nr_pages(NodeId::Ddr) as f64 / sys.nr_pages(NodeId::Cxl) as f64;
        let bw_ratio =
            report.reads_on(NodeId::Ddr) as f64 / report.reads_on(NodeId::Cxl).max(1) as f64;
        println!(
            "{:>12} | {:>12.3} | {:>12.3} | {:>8.3}",
            label,
            pages_ratio,
            bw_ratio,
            bw_ratio / pages_ratio
        );
    }
    println!("{:-<56}", "");
    println!(
        "paper anchors: bw ratios 2.02 / 0.919 / 0.571 for placement ratios 2 / 1 / 1/2\n\
         (bw/pages near 1.0 validates the proportionality hypothesis)."
    );
}
