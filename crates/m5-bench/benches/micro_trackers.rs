//! Criterion micro-benchmarks for the streaming trackers.
//!
//! The hardware requirement (§5.1) is one update per 2.5 ns (tCCD of
//! DDR4-3200) — the software models obviously don't hit that, but their
//! relative throughput matters for simulation turnaround, and the update
//! paths are the hot loops of every figure harness.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use m5_trackers::sketch::CmSketch;
use m5_trackers::spacesaving::SpaceSaving;
use m5_trackers::topk::{CmSketchTopK, SpaceSavingTopK, TopKAlgorithm};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn zipfish_keys(n: usize) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(99);
    (0..n)
        .map(|_| {
            let r: f64 = rng.gen();
            (r * r * r * 100_000.0) as u64
        })
        .collect()
}

fn bench_sketch_update(c: &mut Criterion) {
    let keys = zipfish_keys(100_000);
    let mut group = c.benchmark_group("cm_sketch_update");
    group.throughput(Throughput::Elements(keys.len() as u64));
    for n in [1024usize, 32 * 1024, 128 * 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut sketch = CmSketch::with_total_entries(4, n, 1);
            b.iter(|| {
                for &k in &keys {
                    black_box(sketch.update(k));
                }
            });
        });
    }
    group.finish();
}

fn bench_space_saving_update(c: &mut Criterion) {
    let keys = zipfish_keys(100_000);
    let mut group = c.benchmark_group("space_saving_update");
    group.throughput(Throughput::Elements(keys.len() as u64));
    for n in [50usize, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut ss = SpaceSaving::new(n);
                for &k in &keys {
                    ss.update(k);
                }
                black_box(ss.total())
            });
        });
    }
    group.finish();
}

fn bench_topk_record(c: &mut Criterion) {
    let keys = zipfish_keys(100_000);
    let mut group = c.benchmark_group("topk_record");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("cm_sketch_32k_k5", |b| {
        let mut t = CmSketchTopK::with_total_entries(4, 32 * 1024, 5, 1);
        b.iter(|| {
            for &k in &keys {
                t.record(k);
            }
            black_box(t.top_k())
        });
    });
    group.bench_function("space_saving_50_k5", |b| {
        b.iter(|| {
            let mut t = SpaceSavingTopK::new(50, 5);
            for &k in &keys {
                t.record(k);
            }
            black_box(t.top_k())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sketch_update, bench_space_saving_update, bench_topk_record
}
criterion_main!(benches);
