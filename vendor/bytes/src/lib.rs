//! Offline stand-in for the subset of the `bytes` crate used by the trace
//! codec: `BytesMut::with_capacity` + `put_u64_le` + `freeze`, and `Bytes`
//! consumed through `Buf::{has_remaining, get_u64_le}`.
//!
//! Backed by a plain `Vec<u8>` with a read cursor — no ref-counted slices —
//! which is all the single-owner encode/decode paths here need.

#![forbid(unsafe_code)]

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: bytes.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

/// Sequential read access to a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 8 bytes remain, like the real crate.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u64_le(&mut self) -> u64 {
        let end = self.pos + 8;
        assert!(end <= self.data.len(), "buffer underflow in get_u64_le");
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.data[self.pos..end]);
        self.pos = end;
        u64::from_le_bytes(raw)
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

/// Sequential write access to a byte buffer.
pub trait BufMut {
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64_le() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(0xdead_beef);
        buf.put_u64_le(42);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 16);
        assert!(b.has_remaining());
        assert_eq!(b.get_u64_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), 42);
        assert!(!b.has_remaining());
    }

    #[test]
    fn from_static_reports_full_length() {
        let b = Bytes::from_static(&[0u8; 15]);
        assert_eq!(b.len(), 15);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn short_read_panics() {
        let mut b = Bytes::from_static(&[0u8; 4]);
        let _ = b.get_u64_le();
    }
}
