//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! Implements real data parallelism on `std::thread::scope`: a work queue
//! of `(index, item)` pairs drained by one worker per available core, with
//! each result written back into its original index slot. Consumers
//! therefore observe results in **deterministic input order** no matter
//! how the OS schedules the workers — the property the m5-bench parallel
//! driver's byte-identical-artifacts guarantee rests on.
//!
//! Surface kept rayon-compatible so swapping in the real crate is a
//! `Cargo.toml` edit: `prelude::*`, `par_iter()` / `into_par_iter()`,
//! `map`, `collect`, `for_each`, plus top-level `join` and
//! `current_num_threads`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configured pool size: 0 = not yet resolved (first use consults the
/// `RAYON_NUM_THREADS` environment variable, then available parallelism).
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Pins the worker-thread count for every subsequent parallel operation.
/// Values are clamped to at least 1. Pass the count explicitly (a bench
/// `--shards` sweep, a CI run that must be reproducible) instead of
/// relying on whatever parallelism the host happens to expose.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Number of worker threads a parallel operation will use: the value last
/// pinned by [`set_num_threads`], else `RAYON_NUM_THREADS` from the
/// environment, else the host's available parallelism.
pub fn current_num_threads() -> usize {
    match NUM_THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = std::env::var("RAYON_NUM_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                });
            NUM_THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Runs `f` over `items`, returning results in input order.
///
/// With one core (or one item) this degenerates to a sequential loop with
/// zero thread overhead; otherwise workers pull from a shared queue and
/// deposit results by index. A panic in any worker propagates when the
/// scope joins, matching rayon.
fn run_par<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let job = queue.lock().expect("queue poisoned").pop_front();
                match job {
                    Some((i, item)) => {
                        let r = f(item);
                        *slots[i].lock().expect("slot poisoned") = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("worker completed every claimed job")
        })
        .collect()
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join: right side panicked"))
    })
}

/// A materialized parallel iterator: items are collected up front and
/// fanned out when a consuming adapter runs.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A `map` adapter over [`ParIter`].
pub struct Map<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> Map<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        Map {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_par(self.items, &|t| f(t));
    }

    /// Collects the items (identity map) preserving input order.
    pub fn collect<C>(self) -> C
    where
        T: Send,
        C: FromParallelIterator<T>,
    {
        C::from_ordered_vec(run_par(self.items, &|t| t))
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> Map<T, F> {
    /// Runs the mapped computation in parallel, collecting results in
    /// input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<R>,
    {
        C::from_ordered_vec(run_par(self.items, &self.f))
    }

    /// Runs the mapped computation for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = &self.f;
        run_par(self.items, &|t| g(f(t)));
    }
}

/// Collection types a parallel iterator can collect into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Vec<T> {
        v
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Types whose references yield a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// Converts into a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_input_order() {
        let v: Vec<u64> = (0..1000u64).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64 * 2);
        }
    }

    #[test]
    fn par_iter_over_slice_references() {
        let data = vec![3u64, 1, 4, 1, 5];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
    }

    #[test]
    fn for_each_visits_every_item() {
        let count = AtomicUsize::new(0);
        (0..257usize).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn join_returns_both_sides() {
        let (a, b) = join(|| 40 + 2, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let v: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        (0..8usize).into_par_iter().for_each(|i| {
            if i == 3 {
                panic!("boom");
            }
        });
    }
}
