//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator (xoshiro256++), seeded through
/// SplitMix64 exactly as the upstream `SmallRng` recommends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(mut state: u64) -> SmallRng {
        SmallRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }
}

impl SmallRng {
    /// The raw xoshiro256++ state, for exact checkpoint/restore of a
    /// generator mid-stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`SmallRng::state`].
    pub fn from_state(s: [u64; 4]) -> SmallRng {
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
