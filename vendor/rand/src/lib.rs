//! Offline stand-in for the subset of `rand` 0.8 used by this workspace:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! convenience methods (`gen`, `gen_range`, `gen_bool`).
//!
//! The build container has no network access to crates.io, so the real crate
//! cannot be fetched. Streams here are deterministic per seed (xoshiro256++
//! seeded via SplitMix64, the same generator family the real `SmallRng`
//! uses on 64-bit targets) but are **not** bit-compatible with upstream
//! `rand`; everything in this workspace only relies on determinism, not on
//! specific stream values.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

pub mod rngs;

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value (high half of the next word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution
    /// (uniform over the type's range; `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open; panics when empty).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over an interval.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`; callers guarantee `low < high`.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform draw from `[low, high]`; callers guarantee `low <= high`.
    fn sample_between_incl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_between_incl(rng, low, high)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                // Widen through i128/u128 so the span never overflows, then
                // map the 64-bit draw onto the span with a multiply-shift
                // (Lemire's unbiased-enough reduction for simulation use).
                let span = (high as i128 - low as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + off) as $t
            }

            fn sample_between_incl<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                let span = (high as i128 - low as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + off) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        low + f64::sample(rng) * (high - low)
    }

    fn sample_between_incl<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        // The endpoint has measure zero; the half-open draw is the same
        // distribution for floats.
        low + f64::sample(rng) * (high - low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn full_span_u64_range_works() {
        let mut rng = SmallRng::seed_from_u64(5);
        // A span wider than u64::MAX/2 exercises the u128 widening.
        let v = rng.gen_range(0u64..u64::MAX);
        assert!(v < u64::MAX);
    }
}
