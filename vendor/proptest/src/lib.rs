//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! The build container has no network access to crates.io, so the real crate
//! cannot be fetched. This mini implementation keeps the same surface —
//! `proptest! { ... }`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`,
//! `any::<T>()`, `Just`, range and tuple strategies, `prop::collection::vec`,
//! `prop::bool::weighted`, and `ProptestConfig::with_cases` — backed by a
//! deterministic per-test RNG. It generates random cases and asserts on
//! them; it does **not** shrink failing inputs (failures report the panicking
//! assertion directly).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Asserts a condition inside a `proptest!` test (no shrinking: forwards to
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` test (forwards to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a `proptest!` test (forwards to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks among several strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` random inputs from the strategies
/// and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr);) => {};
    (@munch ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = {
                    let __strategy = $strat;
                    $crate::strategy::Strategy::new_value(&__strategy, &mut __rng)
                };)+
                $body
            }
        }
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn enum_strategy() -> impl Strategy<Value = u8> {
        prop_oneof![
            3 => Just(0u8),
            1 => (1u8..4).prop_map(|v| v),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -3i64..3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..3).contains(&y));
        }

        #[test]
        fn vec_length_respects_size(v in prop::collection::vec(0u64..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for x in v {
                prop_assert!(x < 100);
            }
        }

        #[test]
        fn oneof_and_tuples_compose(
            tag in enum_strategy(),
            pair in (0u64..4, any::<bool>()),
            flag in prop::bool::weighted(0.5),
        ) {
            prop_assert!(tag < 4);
            prop_assert!(pair.0 < 4);
            let _ = (pair.1, flag);
        }
    }

    #[test]
    fn same_name_means_same_stream() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut a = crate::test_runner::TestRng::from_name("x::y");
        let mut b = crate::test_runner::TestRng::from_name("x::y");
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
