//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// The strategy returned by [`weighted`].
#[derive(Clone, Copy, Debug)]
pub struct Weighted(f64);

/// Generates `true` with probability `p`.
pub fn weighted(p: f64) -> Weighted {
    Weighted(p)
}

impl Strategy for Weighted {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.gen::<f64>() < self.0
    }
}
