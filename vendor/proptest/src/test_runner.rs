//! The per-test RNG and run configuration.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Number of cases to run per property (the only knob this stand-in keeps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Cases generated per property test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test generator: seeded from a hash of the test's full
/// path so every run of a given test draws the same cases.
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Builds the generator for the named test.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the test path: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
