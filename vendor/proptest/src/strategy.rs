//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type generated.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among strategies of one value type (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// A union of `(weight, strategy)` options.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        assert!(
            options.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping is exhaustive")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
