//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `Vec`s of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range for vec strategy");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
