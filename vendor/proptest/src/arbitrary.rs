//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<A>(PhantomData<A>);

/// A strategy covering `A`'s whole domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}
