//! Offline stand-in for the subset of `criterion` used by the
//! micro-benchmarks: benchmark groups, `bench_function` /
//! `bench_with_input`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build container has no network access to crates.io. This stand-in
//! measures wall-clock time per iteration batch and prints a one-line
//! mean — enough to compare hot paths locally — with none of the real
//! crate's statistics, reports, or CLI.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.0, self.sample_size, None, f);
        self
    }
}

/// A named benchmark group sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark label, optionally derived from a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A label made of a name and a parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{param}", name.into()))
    }

    /// A label that is just the parameter.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the hot loop.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` runs of `f` (after one warm-up run).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label}: no samples");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!(" ({:.1} Melem/s)", n as f64 / mean / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!(" ({:.1} MiB/s)", n as f64 / mean / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{label}: {:.3} ms/iter{rate}", mean * 1e3);
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            runs += 1;
        });
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert_eq!(runs, 1);
    }
}
