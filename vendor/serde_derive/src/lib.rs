//! Offline stand-in for `serde_derive`.
//!
//! This workspace derives `Serialize`/`Deserialize` on value types for API
//! compatibility but never serializes anything (there is no `serde_json` or
//! other format crate in the build). The container this repository builds in
//! has no network access to crates.io, so the real derive cannot be fetched;
//! this no-op derive accepts the same syntax — including `#[serde(...)]`
//! attributes — and expands to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (with `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (with `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
