//! Offline stand-in for `serde`.
//!
//! The workspace annotates value types with `#[derive(Serialize, Deserialize)]`
//! so they are format-ready, but no format crate is actually linked. This
//! crate provides the trait names and re-exports the no-op derives so the
//! annotations compile without network access to crates.io.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
///
/// Blanket-implemented: any type satisfies a `T: Serialize` bound.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
///
/// Blanket-implemented: any type satisfies a `T: Deserialize<'de>` bound.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
