//! # m5 — a reproduction of the ASPLOS'25 M5 tiered-memory platform
//!
//! This facade crate re-exports the whole workspace so examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`sim`] — the tiered-memory system simulator substrate,
//! * [`trackers`] — streaming top-K structures (CM-Sketch, Space-Saving,
//!   Sticky-Sampling) and the tracker hardware cost model,
//! * [`profilers`] — PAC and WAC, the exact page/word access counters,
//! * [`baselines`] — the CPU-driven page-migration baselines (ANB, DAMON),
//! * [`core`] — the M5 platform itself: HPT/HWT devices plus the
//!   M5-manager (Monitor, Nominator, Elector, Promoter),
//! * [`workloads`] — generators for the paper's twelve benchmarks.
//!
//! See `README.md` for a tour and `examples/quickstart.rs` for a first run.

pub use cxl_sim as sim;
pub use m5_baselines as baselines;
pub use m5_core as core;
pub use m5_profilers as profilers;
pub use m5_trackers as trackers;
pub use m5_workloads as workloads;
