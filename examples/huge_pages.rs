//! The §8 huge-page extension: derive hot 2 MiB huge-page candidates from
//! HPT's hot 4 KiB page stream, consult the "OS" about which candidates
//! are actually huge-backed, and inspect coverage (the 2 MiB analogue of
//! dense vs sparse hot pages).
//!
//! ```bash
//! cargo run --release --example huge_pages
//! ```

use m5::core::hpt::{HotPageTracker, HptConfig};
use m5::core::manager::hugepage::{HugePageAggregator, HugePfn, SUBPAGES_PER_HUGE};
use m5::sim::prelude::*;
use m5::sim::system::NoMigration;
use m5::workloads::registry::Benchmark;

fn main() {
    // Run roms with an HPT attached; every manager epoch would normally
    // promote 4 KiB pages — here we aggregate the epochs into 2 MiB
    // candidates instead.
    let spec = Benchmark::Roms.spec();
    let mut sys = System::new(
        SystemConfig::scaled_default()
            .with_cxl_frames(spec.footprint_pages + 1024)
            .with_ddr_frames(16),
    );
    let region = sys
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .expect("fits");
    let hpt = sys.attach_device(HotPageTracker::new(HptConfig::default()));
    let mut workload = spec.build(region.base, 6_000_000, 8);

    let mut agg = HugePageAggregator::new();
    // Drive the system manually, draining HPT every ~2 ms epoch.
    let mut next_query = sys.now() + Nanos::from_millis(2);
    use m5::sim::system::AccessStream;
    while let Some(a) = workload.next_access() {
        sys.access(a.vaddr, a.is_write);
        if sys.now() >= next_query {
            let epoch = sys
                .device_mut::<HotPageTracker>(hpt)
                .expect("attached")
                .query();
            agg.observe(&epoch);
            next_query = sys.now() + Nanos::from_millis(2);
        }
    }
    let _ = m5::sim::system::run(
        &mut sys,
        &mut workload,
        &mut NoMigration,
        0, // drained above
    );

    println!(
        "aggregated {} candidate 2MiB huge pages from the 4KiB hot-page stream\n",
        agg.len()
    );
    // "Consult the OS": pretend only even-numbered huge frames are backed
    // by real 2 MiB mappings.
    let is_huge_backed = |h: HugePfn| h.0.is_multiple_of(2);
    println!("top huge-page candidates (OS-confirmed only):");
    println!(
        "{:>14} | {:>10} | {:>9} | verdict",
        "huge frame", "hotness", "coverage"
    );
    for e in agg.hottest(8, is_huge_backed) {
        let verdict = if u64::from(e.coverage) > SUBPAGES_PER_HUGE / 4 {
            "dense — migrate as one 2MiB unit"
        } else {
            "sparse — prefer 4KiB migration of its hot subpages"
        };
        println!(
            "{:>14} | {:>10} | {:>6}/512 | {verdict}",
            format!("{:?}", e.huge),
            e.count,
            e.coverage
        );
    }
}
