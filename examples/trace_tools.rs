//! Capture, store, and analyze cache-filtered DRAM traces — the §7.1
//! offline-profiling pipeline (the paper collects such traces with Pin +
//! Ramulator to drive its tracker simulator).
//!
//! ```bash
//! cargo run --release --example trace_tools [out.m5trace]
//! ```

use m5::sim::prelude::*;
use m5::sim::system::NoMigration;
use m5::sim::trace::{decode, encode, TraceCapture};
use m5::workloads::registry::Benchmark;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/mcf.m5trace".to_string());

    // 1. Capture: run mcf with a TraceCapture device on the controller.
    let spec = Benchmark::Mcf.spec();
    let mut sys = System::new(
        SystemConfig::scaled_default()
            .with_cxl_frames(spec.footprint_pages + 1024)
            .with_ddr_frames(16),
    );
    let region = sys.alloc_region(spec.footprint_pages, Placement::AllOnCxl)?;
    let capture = sys.attach_device(TraceCapture::with_limit(1_000_000));
    let mut wl = spec.build(region.base, 1_500_000, 99);
    let _ = m5::sim::system::run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);
    let records = sys
        .device::<TraceCapture>(capture)
        .expect("capture attached")
        .records()
        .to_vec();
    println!("captured {} cache-filtered DRAM accesses", records.len());

    // 2. Store: 16 bytes per record, then round-trip.
    let bytes = encode(&records);
    std::fs::write(&out_path, &bytes)?;
    println!("wrote {} bytes to {out_path}", bytes.len());
    let back = decode(std::fs::read(&out_path)?.into())?;
    assert_eq!(back.len(), records.len());

    // 3. Analyze: the per-page histogram any tracker is trying to learn.
    let mut counts: HashMap<u64, u64> = HashMap::new();
    let mut writes = 0u64;
    for r in &back {
        *counts.entry(r.line.pfn().0).or_default() += 1;
        if r.is_write {
            writes += 1;
        }
    }
    let mut v: Vec<u64> = counts.values().copied().collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "{} pages touched; {:.1}% writebacks; hottest pages: {:?}",
        v.len(),
        100.0 * writes as f64 / back.len() as f64,
        &v[..v.len().min(5)]
    );
    let span = back
        .last()
        .map(|r| r.ts - back[0].ts)
        .unwrap_or(Nanos::ZERO);
    println!(
        "trace spans {span} of simulated time ({:.1} M DRAM accesses/s)",
        back.len() as f64 / span.as_secs_f64().max(1e-9) / 1e6
    );
    Ok(())
}
