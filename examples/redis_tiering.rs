//! The Redis story from the paper's Figure 9: with uniform YCSB-A
//! traffic, a scanner that never backs off (DAMON) keeps paying
//! identification and migration costs at equilibrium and *hurts* p99,
//! while M5's HWT-driven nominator promotes the genuinely hot (dense)
//! index pages at virtually no CPU cost.
//!
//! ```bash
//! cargo run --release --example redis_tiering
//! ```

use m5::baselines::anb::{Anb, AnbConfig};
use m5::baselines::damon::{Damon, DamonConfig};
use m5::baselines::pebs::{PebsConfig, PebsSampler};
use m5::core::manager::M5Manager;
use m5::core::policy;
use m5::sim::report::RunReport;
use m5::sim::system::{run, MigrationDaemon, NoMigration};
use m5::workloads::registry::Benchmark;

const ACCESSES: u64 = 2_000_000;

fn run_once(daemon: &mut dyn MigrationDaemon) -> RunReport {
    let spec = Benchmark::Redis.spec();
    let config = m5::sim::config::SystemConfig::scaled_default()
        .with_cxl_frames(spec.footprint_pages + 1024)
        .with_ddr_frames(spec.footprint_pages / 2);
    let mut sys = m5::sim::system::System::new(config);
    let region = sys
        .alloc_region(spec.footprint_pages, m5::sim::config::Placement::AllOnCxl)
        .expect("fits");
    let mut wl = spec.build(region.base, ACCESSES + 64, 7);
    run(&mut sys, &mut wl, daemon, ACCESSES)
}

fn main() {
    println!("Redis + YCSB-A on tiered memory: p99 under four migration policies\n");
    let baseline = run_once(&mut NoMigration);
    let show = |name: &str, r: &RunReport| {
        let p99 = r.p99().expect("kv workloads mark ops");
        let base_p99 = baseline.p99().expect("ops");
        println!(
            "{name:>14}: p99 {p99} ({:+.1}% vs none) | promoted {} | kernel {}",
            100.0 * (p99.0 as f64 / base_p99.0 as f64 - 1.0),
            r.migrations.promotions,
            r.kernel.total()
        );
    };
    show("no migration", &baseline);
    show("anb", &run_once(&mut Anb::new(AnbConfig::default())));
    show("damon", &run_once(&mut Damon::new(DamonConfig::default())));
    show(
        "pebs (memtis-like)",
        &run_once(&mut PebsSampler::new(PebsConfig::default())),
    );
    show(
        "m5 (hwt)",
        &run_once(&mut M5Manager::new(policy::simple_hwt_policy())),
    );
    println!(
        "\nExpected: ANB's hinting faults hammer p99 over this short horizon; DAMON's\n\
         scanning+migrating is p99-neutral-to-harmful; PEBS pays hundreds of ms of\n\
         kernel time for its samples; M5(HWT) matches the best p99 at a tenth of the\n\
         kernel cost by promoting the dense hot index pages."
    );
}
