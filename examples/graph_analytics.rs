//! Graph analytics on tiered memory: run real GAP kernels (PageRank and
//! BFS over an R-MAT social graph) and compare no-migration against
//! M5(HPT).
//!
//! PageRank's pull-phase reads the rank of every neighbour, so high
//! in-degree hubs concentrate traffic on a few property pages — exactly
//! the kind of skew a hot-word/hot-page tracker can exploit. The
//! HWT-driven policy is used here: graph kernels have long re-reference
//! periods (a full iteration), and the manager-side `_HWA` accumulation
//! rides those out where per-epoch page rankings churn.
//!
//! ```bash
//! cargo run --release --example graph_analytics
//! ```

use m5::core::manager::M5Manager;
use m5::core::policy;
use m5::sim::memory::NodeId;
use m5::sim::prelude::*;
use m5::sim::system::NoMigration;
use m5::workloads::registry::Benchmark;

const ACCESSES: u64 = 12_000_000;

fn run_kernel(bench: Benchmark, with_m5: bool) -> (RunReport, u64) {
    let spec = bench.spec();
    let config = SystemConfig::scaled_default()
        .with_cxl_frames(spec.footprint_pages + 1024)
        .with_ddr_frames(spec.footprint_pages / 2);
    let mut sys = System::new(config);
    let region = sys
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .expect("fits");
    let mut wl = spec.build(region.base, ACCESSES + 64, 11);
    let report = if with_m5 {
        let mut m5 = M5Manager::new(policy::simple_hwt_policy());
        m5::sim::system::run(&mut sys, &mut wl, &mut m5, ACCESSES)
    } else {
        m5::sim::system::run(&mut sys, &mut wl, &mut NoMigration, ACCESSES)
    };
    let ddr_pages = sys.nr_pages(NodeId::Ddr);
    (report, ddr_pages)
}

fn main() {
    println!("GAP kernels over an R-MAT graph (128K vertices), CXL-first placement\n");
    for bench in [Benchmark::Pr, Benchmark::Bfs] {
        let (base, _) = run_kernel(bench, false);
        let (m5run, ddr_pages) = run_kernel(bench, true);
        println!("kernel {}:", bench.label());
        println!("  no migration: {}", base.total_time);
        println!(
            "  with M5(HWT): {} (speedup {:.2}x), {} pages promoted to DDR ({} resident)",
            m5run.total_time,
            m5run.speedup_vs(&base),
            m5run.migrations.promotions,
            ddr_pages
        );
        println!(
            "  DDR now serves {:.0}% of DRAM reads\n",
            100.0 * m5run.reads_on(NodeId::Ddr) as f64
                / (m5run.reads_on(NodeId::Ddr) + m5run.reads_on(NodeId::Cxl)).max(1) as f64
        );
    }
}
