//! Offline profiling with PAC and WAC: exactly count page and word
//! accesses for a workload and report hotness skew plus page sparsity —
//! the §3/§4 methodology of the paper, usable for any workload you write
//! against the simulator.
//!
//! ```bash
//! cargo run --release --example profile_sparsity
//! ```

use m5::profilers::pac::{Pac, PacConfig};
use m5::profilers::wac::{Wac, WacConfig};
use m5::sim::prelude::*;
use m5::sim::system::NoMigration;
use m5::workloads::registry::Benchmark;

const ACCESSES: u64 = 1_500_000;

fn main() {
    for bench in [Benchmark::Redis, Benchmark::Roms] {
        let spec = bench.spec();
        let config = SystemConfig::scaled_default()
            .with_cxl_frames(spec.footprint_pages + 1024)
            .with_ddr_frames(16);
        let mut sys = System::new(config);
        let region = sys
            .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
            .expect("fits");
        let pac = sys.attach_device(Pac::new(PacConfig::covering_cxl(&sys)));
        let wac = sys.attach_device(Wac::new(WacConfig::covering_cxl(&sys)));

        let mut wl = spec.build(region.base, ACCESSES, 3);
        let _ = m5::sim::system::run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);

        let pac: &Pac = sys.device(pac).unwrap();
        let wac: &Wac = sys.device(wac).unwrap();

        println!("== {} ==", bench.label());
        println!(
            "PAC counted {} accesses over {} touched pages",
            pac.total_counted(),
            pac.iter_counts().count()
        );
        println!("hottest pages:");
        for (pfn, count) in pac.hottest(5) {
            println!("  {pfn:?}: {count} accesses");
        }

        // Word-level sparsity histogram (Figure 4's raw data).
        let uniq = wac.unique_words_per_page();
        let mut histogram = [0u32; 5];
        for &words in uniq.values() {
            let bucket = match words {
                0..=4 => 0,
                5..=8 => 1,
                9..=16 => 2,
                17..=32 => 3,
                _ => 4,
            };
            histogram[bucket] += 1;
        }
        let total = uniq.len().max(1) as f64;
        println!("unique 64B words touched per page:");
        for (label, count) in ["1-4", "5-8", "9-16", "17-32", "33-64"]
            .iter()
            .zip(histogram)
        {
            println!(
                "  {label:>6} words: {:>5.1}% of pages",
                100.0 * count as f64 / total
            );
        }
        println!();
    }
    println!("Redis pages are sparse (most ≤16 words); roms pages are mostly dense.");
}
