//! Quickstart: assemble a tiered-memory system, attach the M5 platform,
//! run a skewed workload, and watch hot pages migrate to the fast tier.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use m5::core::manager::M5Manager;
use m5::core::policy;
use m5::sim::memory::NodeId;
use m5::sim::prelude::*;
use m5::workloads::registry::Benchmark;

fn main() {
    // 1. A machine: 48 MiB of fast DDR (100 ns) + 192 MiB of slow CXL
    //    DRAM (270 ns), behind a 2 MiB LLC.
    let spec = Benchmark::Mcf.spec();
    let config = SystemConfig::scaled_default()
        .with_cxl_frames(spec.footprint_pages + 1024)
        .with_ddr_frames(spec.footprint_pages / 2);
    let mut system = System::new(config);

    // 2. The workload's pages all start on the slow tier (the paper's
    //    setup: cgroup-allocated to CXL).
    let region = system
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .expect("CXL node sized to fit");
    println!(
        "allocated {} pages on CXL ({} free DDR frames waiting)",
        region.pages,
        system.free_frames(NodeId::Ddr)
    );

    // 3. An mcf-like pointer-chasing workload, and the M5 manager with the
    //    paper's simple policy (CM-Sketch(32K) HPT, fscale = x^4).
    let mut workload = spec.build(region.base, 2_000_000, 42);
    let mut m5 = M5Manager::new(policy::simple_hpt_policy());

    // 4. Run. The manager periodically queries the Hot-Page Tracker in the
    //    CXL controller and promotes what it nominates.
    let report = m5::sim::system::run(&mut system, &mut workload, &mut m5, u64::MAX);

    println!("\n{report}");
    println!(
        "\npages now on DDR: {} | manager epochs: {} | promoted: {}",
        system.nr_pages(NodeId::Ddr),
        m5.epochs(),
        report.migrations.promotions
    );
    println!(
        "CXL reads {} vs DDR reads {} — migration shifted the hot set to the fast tier",
        report.reads_on(NodeId::Cxl),
        report.reads_on(NodeId::Ddr)
    );
}
