//! Policy playground: the whole point of M5 is that the manager is a
//! *platform* — Monitor statistics in, migration decisions out. This
//! example sweeps Elector policies (fscale shape, default frequency,
//! nominator mode) on one workload and prints what each choice buys.
//!
//! ```bash
//! cargo run --release --example policy_playground
//! ```

use m5::core::manager::elector::{ElectorConfig, FScale};
use m5::core::manager::nominator::NominatorMode;
use m5::core::manager::{M5Config, M5Manager};
use m5::core::policy;
use m5::sim::prelude::*;
use m5::sim::system::NoMigration;
use m5::workloads::registry::Benchmark;

const ACCESSES: u64 = 2_000_000;

fn run_policy(config: M5Config, label: &str, baseline: &RunReport) {
    let spec = Benchmark::Roms.spec();
    let sys_config = SystemConfig::scaled_default()
        .with_cxl_frames(spec.footprint_pages + 1024)
        .with_ddr_frames(spec.footprint_pages / 2);
    let mut sys = System::new(sys_config);
    let region = sys
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .expect("fits");
    let mut wl = spec.build(region.base, ACCESSES + 64, 5);
    let mut m5 = M5Manager::new(config);
    let report = m5::sim::system::run(&mut sys, &mut wl, &mut m5, ACCESSES);
    println!(
        "{label:>28}: speedup {:.3}x | epochs {} (migrating {}) | promoted {}",
        report.speedup_vs(baseline),
        m5.epochs(),
        m5.migrate_epochs(),
        report.migrations.promotions,
    );
}

fn main() {
    println!("Elector/Nominator policy sweep on roms (the most skew-rewarding benchmark)\n");
    let spec = Benchmark::Roms.spec();
    let sys_config = SystemConfig::scaled_default()
        .with_cxl_frames(spec.footprint_pages + 1024)
        .with_ddr_frames(spec.footprint_pages / 2);
    let mut sys = System::new(sys_config);
    let region = sys
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .expect("fits");
    let mut wl = spec.build(region.base, ACCESSES + 64, 5);
    let baseline = m5::sim::system::run(&mut sys, &mut wl, &mut NoMigration, ACCESSES);
    println!("{:>28}: {}", "no migration", baseline.total_time);

    // fscale shape sweep (Algorithm 1 line 2; the paper tries n = 3..6).
    for n in [3.0, 4.0, 6.0] {
        let mut cfg = policy::simple_hpt_policy();
        cfg.elector = ElectorConfig {
            fscale: FScale::Power { n },
            ..cfg.elector
        };
        run_policy(cfg, &format!("fscale = x^{n}"), &baseline);
    }
    {
        let mut cfg = policy::simple_hpt_policy();
        cfg.elector = ElectorConfig {
            fscale: FScale::Exponential { n: 1.0 },
            ..cfg.elector
        };
        run_policy(cfg, "fscale = 1*exp(x)", &baseline);
    }

    // Nominator mechanism sweep (Guidelines 3 and 4).
    println!();
    run_policy(policy::simple_hpt_policy(), "HPT-only nominator", &baseline);
    run_policy(
        policy::simple_hpt_hwt_policy(),
        "HPT-driven (dense-first)",
        &baseline,
    );
    run_policy(policy::simple_hwt_policy(), "HWT-driven", &baseline);

    // Batch-size sensitivity.
    println!();
    for batch in [8usize, 32, 128] {
        let mut cfg = policy::simple_hpt_policy();
        cfg.promote_batch = batch;
        run_policy(cfg, &format!("promote batch = {batch}"), &baseline);
    }
    let _ = NominatorMode::HptOnly; // (documented entry point for custom modes)
}
